//! The out-of-core GPU executor (Algorithm 3 + Section IV).

use crate::assemble::assemble;
use crate::chunks::{ChunkGrid, ChunkId, ChunkInfo};
use crate::config::{ExecMode, OocConfig};
use crate::faults::{self, HostFaultKind, HostFaultState};
use crate::metrics::{
    ChunkMetrics, DegradationCause, DegradationEvent, DemotionCause, EstimatorStats, Metrics,
};
use crate::pipeline::{simulate_pipeline_recovering, ChunkAttempt, ChunkFailure};
use crate::plan::{split_range_by_flops, PanelPlan, Planner};
use crate::recovery::{backoff_ns, RecoveryReport};
use crate::Result;
use accum::estimate::{EstModel, EstimatorKind};
use gpu_sim::{GpuSim, SimTime, Timeline};
use gpu_spgemm::{phases, ChunkJob, PreparedChunk};
use rayon::prelude::*;
use sparse::partition::ColPanel;
use sparse::{CsrMatrix, CsrView};
use std::collections::HashMap;
use std::ops::Range;

/// All chunks of a plan, prepared (real results + descriptors), in
/// row-major grid order. Shared by the GPU-only and hybrid executors.
pub struct PreparedGrid {
    /// The panel plan the grid was prepared under.
    pub plan: PanelPlan,
    /// Per-chunk flop/nnz descriptors for ordering decisions.
    pub grid: ChunkGrid,
    /// Row-major; `prepared[r * col_panels + c]`.
    pub prepared: Vec<PreparedChunk>,
    /// The partitioned B panels, retained so recovery can re-prepare
    /// sub-chunks against the same panels.
    pub col_panels: Vec<ColPanel>,
    /// Global per-row flop prefix sums from the planner, retained for
    /// recovery re-splitting.
    pub row_flops_prefix: Vec<u64>,
    /// The calibrated estimator model when the grid was planned from
    /// nnz(C) estimates instead of the exact symbolic pass; `None` for
    /// exact plans. A `Some` here means every prepared chunk carries a
    /// speculative descriptor and the executor runs the speculative
    /// schedule.
    pub est_model: Option<EstModel>,
}

impl PreparedGrid {
    /// The prepared chunk at grid position `id`.
    pub fn chunk(&self, id: ChunkId) -> &PreparedChunk {
        &self.prepared[id.row * self.plan.col_panels() + id.col]
    }

    /// Total flops of the multiplication.
    pub fn total_flops(&self) -> u64 {
        self.grid.total_flops()
    }

    /// Total output nonzeros across all chunks.
    pub fn total_nnz(&self) -> u64 {
        self.prepared.iter().map(|p| p.nnz).sum()
    }

    /// Approximate resident host-heap footprint of the grid, in bytes:
    /// the per-chunk output CSR arrays, the retained B column panels,
    /// the row-group index vectors, and the planner prefix sums. The
    /// service frontend's grid cache charges this number against
    /// `ServiceConfig::grid_cache_bytes`, so it deliberately counts the
    /// arrays that dominate residency (everything `Vec`-shaped) and
    /// ignores fixed-size struct overhead.
    pub fn resident_bytes(&self) -> u64 {
        fn csr_bytes(m: &CsrMatrix) -> u64 {
            // row_offsets: usize per row + 1; col ids: u32; values: f64.
            ((m.n_rows() + 1) * 8 + m.nnz() * 12) as u64
        }
        let chunks: u64 = self
            .prepared
            .iter()
            .map(|p| {
                // Symbolic and numeric row groups each hold one u32 per
                // panel row (plus per-group flop totals, negligible).
                csr_bytes(&p.result) + p.rows as u64 * 8
            })
            .sum();
        let panels: u64 = self.col_panels.iter().map(|cp| csr_bytes(&cp.matrix)).sum();
        let prefix = (self.row_flops_prefix.len() * 8) as u64;
        chunks + panels + prefix
    }
}

type PlannedGrid = (
    PanelPlan,
    ChunkGrid,
    Vec<ColPanel>,
    Vec<u64>,
    Option<EstModel>,
);

/// The planning prologue shared by the parallel and serial grid
/// preparation: validate, plan panels, partition B, and size the grid.
///
/// With a non-exact estimator and async mode, the panel plan is sized
/// from the sampled nnz(C) model ([`Planner::estimated`]) — the exact
/// symbolic planning pass is skipped entirely and the returned model
/// drives speculative execution. Sync mode always plans exactly: its
/// schedule has no overlap to win back, so speculation would only risk
/// overflows.
fn plan_grid(a: &CsrMatrix, b: &CsrMatrix, config: &OocConfig) -> Result<PlannedGrid> {
    config.validate()?;
    let speculative =
        config.mode == ExecMode::Async && config.estimator.kind != EstimatorKind::Exact;
    let planner = if speculative {
        Planner::estimated(a, b, &config.estimator)?
    } else {
        Planner::new(a, b)?
    };
    let plan = match config.panels {
        Some((r, c)) => planner.fixed(r, c)?,
        None => planner.auto(config.device.device_memory_bytes)?,
    };
    let row_flops_prefix = planner.row_flops_prefix().to_vec();
    let est_model = planner.est_model().copied();
    let col_panels = config.col_partitioner.partition(b, &plan.col_ranges);
    let grid = ChunkGrid::compute(a, &plan, &col_panels);
    Ok((plan, grid, col_panels, row_flops_prefix, est_model))
}

/// Attaches the speculative descriptor to every chunk of a grid that
/// was planned from estimates. One shared post-pass for both
/// preparation engines, so the parallel and serial grids stay
/// field-identical (the `prepare_equivalence` suite covers `spec`
/// too). The chunks' exact results are untouched — speculation only
/// changes how the simulation sizes and schedules them.
pub(crate) fn attach_speculation_all(
    a: &CsrMatrix,
    plan: &PanelPlan,
    col_panels: &[ColPanel],
    prepared: &mut [PreparedChunk],
    model: &EstModel,
) {
    let k_c = plan.col_panels();
    for (idx, chunk) in prepared.iter_mut().enumerate() {
        let range = &plan.row_ranges[idx / k_c];
        let a_panel = CsrView::rows(a, range.start, range.end);
        phases::attach_speculation(chunk, &a_panel, &col_panels[idx % k_c].matrix, model);
    }
}

/// Plans, partitions and prepares every chunk of `C = a · b`.
///
/// Chunk preparation — the host-side hot path — runs in parallel over
/// the whole grid: every chunk is a pure function of its A row panel
/// and B column panel, so each rayon worker writes its finished
/// [`PreparedChunk`] into a pre-sized slot and the assembled vector is
/// bit-identical to [`prepare_grid_serial`]'s, in the same row-major
/// order (the `prepare_equivalence` suite asserts this field by
/// field). Workers share one [`accum::ScratchPool`], and chunks whose
/// B panel spans all of B reuse the planner's cached flop prefix
/// instead of re-running row analysis.
///
/// [`OocConfig::prepare_parallelism`] caps how many chunks
/// materialize concurrently (wave by wave), bounding peak host memory
/// on huge grids.
pub fn prepare_grid(a: &CsrMatrix, b: &CsrMatrix, config: &OocConfig) -> Result<PreparedGrid> {
    prepare_grid_pooled(a, b, config, &accum::ScratchPool::new())
}

/// [`prepare_grid`] against a caller-owned [`accum::ScratchPool`], so a
/// long-lived frontend (the service layer) keeps its workers' scratch
/// warm across requests instead of re-growing it per multiplication.
/// Pooling only changes allocation reuse, never results — the prepared
/// grid is bit-identical to a cold-pool preparation.
pub fn prepare_grid_pooled(
    a: &CsrMatrix,
    b: &CsrMatrix,
    config: &OocConfig,
    pool: &accum::ScratchPool,
) -> Result<PreparedGrid> {
    let (plan, grid, col_panels, row_flops_prefix, est_model) = plan_grid(a, b, config)?;
    let k_c = plan.col_panels();
    let n = plan.num_chunks();
    let mut slots: Vec<Option<PreparedChunk>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let cap = config.prepare_parallelism.unwrap_or(n).max(1);
    let mut start = 0usize;
    while start < n {
        let end = (start + cap).min(n);
        let base = start;
        slots[start..end]
            .par_iter_mut()
            .enumerate()
            .for_each(|(i, slot)| {
                let idx = base + i;
                let range = &plan.row_ranges[idx / k_c];
                // With a single column panel, the panel's per-row flops
                // equal the planner's global ones, so the cached prefix
                // replaces the chunk's row analysis.
                let prefix = if k_c == 1 {
                    Some(&row_flops_prefix[range.start..=range.end])
                } else {
                    None
                };
                *slot = Some(phases::prepare_chunk_with(
                    ChunkJob {
                        a_panel: CsrView::rows(a, range.start, range.end),
                        b_panel: &col_panels[idx % k_c].matrix,
                        chunk_id: idx,
                    },
                    pool,
                    prefix,
                ));
            });
        start = end;
    }
    let mut prepared: Vec<PreparedChunk> = slots
        .into_iter()
        .map(|s| s.expect("every chunk prepared"))
        .collect();
    if let Some(model) = &est_model {
        attach_speculation_all(a, &plan, &col_panels, &mut prepared, model);
    }
    Ok(PreparedGrid {
        plan,
        grid,
        prepared,
        col_panels,
        row_flops_prefix,
        est_model,
    })
}

/// [`prepare_grid`] with the original serial chunk loop and the
/// pre-parallel per-chunk engine, retained as the equivalence oracle
/// and the bench baseline.
pub fn prepare_grid_serial(
    a: &CsrMatrix,
    b: &CsrMatrix,
    config: &OocConfig,
) -> Result<PreparedGrid> {
    let (plan, grid, col_panels, row_flops_prefix, est_model) = plan_grid(a, b, config)?;
    let k_c = plan.col_panels();
    let mut prepared = Vec::with_capacity(plan.num_chunks());
    for (r, range) in plan.row_ranges.iter().enumerate() {
        let a_view = CsrView::rows(a, range.start, range.end);
        for (c, panel) in col_panels.iter().enumerate() {
            prepared.push(phases::prepare_chunk_serial(ChunkJob {
                a_panel: a_view,
                b_panel: &panel.matrix,
                chunk_id: r * k_c + c,
            }));
        }
    }
    if let Some(model) = &est_model {
        attach_speculation_all(a, &plan, &col_panels, &mut prepared, model);
    }
    Ok(PreparedGrid {
        plan,
        grid,
        prepared,
        col_panels,
        row_flops_prefix,
        est_model,
    })
}

/// Simulates the chosen execution mode over an ordered chunk list and
/// returns the completion time.
pub(crate) fn simulate_order(
    sim: &mut GpuSim,
    pg: &PreparedGrid,
    order: &[ChunkInfo],
    config: &OocConfig,
) -> Result<SimTime> {
    // The A panel stays resident while consecutive chunks share it.
    let transfer_a: Vec<bool> = order
        .iter()
        .enumerate()
        .map(|(i, info)| i == 0 || order[i - 1].id.row != info.id.row)
        .collect();
    match config.mode {
        ExecMode::Sync => {
            let stream = sim.create_stream();
            let mut done = sim.now();
            for (info, &xfer_a) in order.iter().zip(&transfer_a) {
                done = gpu_spgemm::simulate_sync_chunk(sim, stream, pg.chunk(info.id), xfer_a)?;
            }
            Ok(done)
        }
        ExecMode::Async => {
            let refs: Vec<&PreparedChunk> = order.iter().map(|info| pg.chunk(info.id)).collect();
            crate::pipeline::simulate_pipeline_depth(
                sim,
                &refs,
                &transfer_a,
                config.split_fraction,
                config.pinned,
                config.pipeline_depth,
            )
        }
    }
}

/// What the self-healing orchestration produced: the final simulated
/// time, recovery accounting, and result overrides for re-split chunks
/// (vstacked from their sub-chunk results — bit-identical to the
/// original chunk result because SpGEMM rows are independent).
pub(crate) struct RecoveredOutcome {
    pub sim_ns: SimTime,
    pub report: RecoveryReport,
    pub overrides: HashMap<ChunkId, CsrMatrix>,
    /// Per-planned-chunk attempt/re-split/demotion counters, ordered
    /// by (row, col).
    pub chunk_stats: Vec<ChunkMetrics>,
    /// Supervised degradation events, in the order they took effect.
    pub degradations: Vec<DegradationEvent>,
}

enum WorkSource {
    Orig(ChunkId),
    Sub(usize),
}

struct WorkItem {
    parent: ChunkId,
    rows: Range<usize>,
    depth: u32,
    source: WorkSource,
}

/// Self-healing pass-based orchestration, used whenever a fault plan,
/// host-fault plan, or run budget is installed (both exec modes route
/// through the pooled async-style schedule — recovery needs the pool
/// geometry to reason about what fits). Each pass runs the surviving
/// work list through the recovering pipeline on one persistent
/// simulator (time accumulates across passes); failed chunks are
/// re-split along the planner's row-flop prefix sums (OOM) or demoted
/// to the CPU executor (fault budget exhausted), until the list is
/// empty.
///
/// When a [`crate::recovery::RunBudget`] is installed the pass loop is
/// supervised: at every pass boundary the budget's degradation rung is
/// recomputed from elapsed simulated time (plus a recovery-spiral
/// guard on `time_lost_ns`), and the remaining work is degraded
/// monotonically — shrink speculation headroom, then force exact
/// planning, then demote everything to the CPU; if even CPU demotion
/// cannot meet the deadline the run fails with
/// [`crate::OocError::DeadlineExceeded`] carrying partial accounting.
/// Sustained pressure (cumulative capacity shrink, repeated estimate
/// overflows) re-plans the remaining grid in one batch instead of
/// walking every chunk down the per-chunk re-split ladder.
pub(crate) fn simulate_order_recovering(
    sim: &mut GpuSim,
    a: &CsrMatrix,
    pg: &PreparedGrid,
    order: &[ChunkInfo],
    config: &OocConfig,
) -> Result<RecoveredOutcome> {
    let policy = config.recovery;
    let budget = config.budget;
    let mut host = config
        .host_faults
        .as_ref()
        .map(|p| HostFaultState::new(p.derive(faults::streams::EXECUTOR)));
    let mut degradations: Vec<DegradationEvent> = Vec::new();
    let mut rung: u8 = 0;
    let mut deadline_hit = false;
    let planning_capacity = sim.memory().capacity();
    let mut replanned_capacity = false;
    let mut replanned_overflow = false;
    let total_chunks = order.len();
    let mut report = RecoveryReport::default();
    let mut pending: Vec<WorkItem> = order
        .iter()
        .map(|info| WorkItem {
            parent: info.id,
            rows: pg.plan.row_ranges[info.id.row].clone(),
            depth: 0,
            source: WorkSource::Orig(info.id),
        })
        .collect();
    let mut sub_store: Vec<PreparedChunk> = Vec::new();
    // Completed/demoted sub-chunk results per re-split parent, keyed
    // by global start row for the final ordered vstack.
    let mut pieces: HashMap<ChunkId, Vec<(usize, CsrMatrix)>> = HashMap::new();
    let mut next_sub_id = pg.plan.num_chunks();
    let mut stats: HashMap<ChunkId, ChunkMetrics> = HashMap::new();

    while !pending.is_empty() {
        // --- Supervision: walk the budget's degradation ladder. The
        // rung is monotonic; a recovery spiral (time lost above the
        // tolerated fraction) escalates one extra rung.
        if let Some(b) = budget {
            let elapsed = sim.now();
            let mut target = b.rung_at(elapsed);
            if deadline_hit {
                target = 3;
            }
            if elapsed > 0 && report.time_lost_ns as f64 > b.max_recovery_fraction * elapsed as f64
            {
                target = target.max(rung.saturating_add(1)).min(3);
            }
            while rung < target {
                rung += 1;
                match rung {
                    1 => {
                        // Shrink speculation headroom: re-size pending
                        // speculative chunks to their exact output, so
                        // estimate overflows can no longer occur.
                        for w in pending.iter_mut() {
                            let grown = {
                                let p = match w.source {
                                    WorkSource::Orig(id) => pg.chunk(id),
                                    WorkSource::Sub(si) => &sub_store[si],
                                };
                                if p.spec.is_none() {
                                    continue;
                                }
                                p.grown()
                            };
                            sub_store.push(grown);
                            w.source = WorkSource::Sub(sub_store.len() - 1);
                        }
                        sim.note_recovery("budget rung 1: shrink speculation headroom");
                        degradations.push(DegradationEvent {
                            cause: DegradationCause::HeadroomShrink,
                            at_ns: elapsed,
                            cost_ns: 0,
                        });
                    }
                    2 => {
                        // Force exact planning: strip speculation from
                        // the remaining chunks (full symbolic schedule).
                        for w in pending.iter_mut() {
                            let exact = {
                                let p = match w.source {
                                    WorkSource::Orig(id) => pg.chunk(id),
                                    WorkSource::Sub(si) => &sub_store[si],
                                };
                                if p.spec.is_none() {
                                    continue;
                                }
                                let mut e = p.clone();
                                e.spec = None;
                                e
                            };
                            sub_store.push(exact);
                            w.source = WorkSource::Sub(sub_store.len() - 1);
                        }
                        sim.note_recovery("budget rung 2: force exact planning");
                        degradations.push(DegradationEvent {
                            cause: DegradationCause::ForcedExact,
                            at_ns: elapsed,
                            cost_ns: 0,
                        });
                    }
                    _ => {}
                }
            }
            if rung >= 3 {
                // Final rung: demote everything that remains to the CPU
                // at its calibrated (exactly predictable) cost. If even
                // that misses the deadline, fail cleanly with partial
                // accounting instead of burning more simulated time.
                let mut cpu_total: SimTime = 0;
                for w in &pending {
                    let p = match w.source {
                        WorkSource::Orig(id) => pg.chunk(id),
                        WorkSource::Sub(si) => &sub_store[si],
                    };
                    cpu_total = cpu_total.saturating_add(config.cpu_chunk_ns(p.flops, p.nnz));
                }
                if elapsed.saturating_add(cpu_total) > b.sim_deadline_ns {
                    let pending_parents: std::collections::HashSet<ChunkId> =
                        pending.iter().map(|w| w.parent).collect();
                    let partial = crate::report::RunReport::new(
                        "partial",
                        "supervised",
                        pg.total_flops(),
                        pg.total_nnz(),
                        elapsed,
                    )
                    .with_recovery(&report)
                    .with_degradations(&degradations);
                    return Err(crate::OocError::DeadlineExceeded {
                        deadline_ns: b.sim_deadline_ns,
                        elapsed_ns: elapsed,
                        completed_chunks: total_chunks - pending_parents.len(),
                        total_chunks,
                        partial: Box::new(partial),
                    });
                }
                sim.note_recovery(format!(
                    "budget rung 3: demote {} remaining work items to CPU",
                    pending.len()
                ));
                degradations.push(DegradationEvent {
                    cause: DegradationCause::DeadlineDemotion,
                    at_ns: elapsed,
                    cost_ns: cpu_total,
                });
                for w in &pending {
                    report.demotions += 1;
                    let s = stats
                        .entry(w.parent)
                        .or_insert_with(|| ChunkMetrics::new(w.parent));
                    s.demotions += 1;
                    s.demotion_cause.get_or_insert(DemotionCause::Deadline);
                    let p = match w.source {
                        WorkSource::Orig(id) => pg.chunk(id),
                        WorkSource::Sub(si) => &sub_store[si],
                    };
                    let cpu_ns = config.cpu_chunk_ns(p.flops, p.nnz);
                    if let Some(h) = host.as_mut() {
                        let mut attempt = 0u32;
                        while h.roll(HostFaultKind::CpuKernel) {
                            attempt += 1;
                            let wait = backoff_ns(sim.cost(), attempt);
                            report.cpu_kernel_faults += 1;
                            report.retries += 1;
                            report.backoff_ns += wait;
                            report.time_lost_ns += cpu_ns + wait;
                            sim.host_compute(
                                cpu_ns + wait,
                                format!("CPU retry chunk ({},{})", w.parent.row, w.parent.col),
                            );
                        }
                    }
                    sim.host_compute(
                        cpu_ns,
                        format!("CPU fallback chunk ({},{})", w.parent.row, w.parent.col),
                    );
                    if let WorkSource::Sub(si) = w.source {
                        pieces
                            .entry(w.parent)
                            .or_default()
                            .push((w.rows.start, sub_store[si].result.clone()));
                    }
                }
                pending.clear();
                continue;
            }
        }

        for w in &pending {
            stats
                .entry(w.parent)
                .or_insert_with(|| ChunkMetrics::new(w.parent))
                .attempts += 1;
        }
        let attempts: Vec<ChunkAttempt<'_>> = pending
            .iter()
            .map(|w| ChunkAttempt {
                chunk: match w.source {
                    WorkSource::Orig(id) => pg.chunk(id),
                    WorkSource::Sub(i) => &sub_store[i],
                },
                row: w.parent.row,
            })
            .collect();
        let outcome = simulate_pipeline_recovering(
            sim,
            &attempts,
            config.split_fraction,
            config.pinned,
            config.pipeline_depth,
            &policy,
            &mut report,
            budget.map(|b| b.demote_after_ns()),
        )?;
        drop(attempts);
        let failed: HashMap<usize, ChunkFailure> = outcome.failed.into_iter().collect();

        let mut next: Vec<WorkItem> = Vec::new();
        for (i, w) in pending.iter().enumerate() {
            match failed.get(&i) {
                None => {
                    if let WorkSource::Sub(si) = w.source {
                        pieces
                            .entry(w.parent)
                            .or_default()
                            .push((w.rows.start, sub_store[si].result.clone()));
                    }
                }
                Some(ChunkFailure::Oom(_))
                    if w.rows.len() > 1 && w.depth < policy.max_resplit_depth =>
                {
                    report.resplits += 1;
                    if let Some(s) = stats.get_mut(&w.parent) {
                        s.resplits += 1;
                    }
                    sim.note_recovery(format!(
                        "re-split chunk ({},{}) rows {}..{}",
                        w.parent.row, w.parent.col, w.rows.start, w.rows.end
                    ));
                    for sub in split_range_by_flops(&pg.row_flops_prefix, &w.rows, 2) {
                        if sub.is_empty() {
                            continue;
                        }
                        // Host-allocation pressure: re-preparing a
                        // sub-chunk allocates host buffers, which can
                        // stall under memory pressure.
                        if let Some(h) = host.as_mut() {
                            while h.roll(HostFaultKind::HostAlloc) {
                                let wait = backoff_ns(sim.cost(), 1);
                                report.host_alloc_faults += 1;
                                report.time_lost_ns += wait;
                                sim.host_compute(wait, "host-allocation stall (re-split)");
                            }
                        }
                        let p = phases::prepare_chunk(ChunkJob {
                            a_panel: CsrView::rows(a, sub.start, sub.end),
                            b_panel: &pg.col_panels[w.parent.col].matrix,
                            chunk_id: next_sub_id,
                        });
                        next_sub_id += 1;
                        sub_store.push(p);
                        next.push(WorkItem {
                            parent: w.parent,
                            rows: sub,
                            depth: w.depth + 1,
                            source: WorkSource::Sub(sub_store.len() - 1),
                        });
                    }
                }
                Some(ChunkFailure::Deadline) => {
                    // The budget's demotion point passed mid-pass: keep
                    // the item queued; the supervisor demotes everything
                    // at the next pass boundary (or fails with
                    // `DeadlineExceeded` if even CPU demotion is late).
                    deadline_hit = true;
                    next.push(WorkItem {
                        parent: w.parent,
                        rows: w.rows.clone(),
                        depth: w.depth,
                        source: match w.source {
                            WorkSource::Orig(id) => WorkSource::Orig(id),
                            WorkSource::Sub(si) => WorkSource::Sub(si),
                        },
                    });
                }
                Some(ChunkFailure::EstimateOverflow { needed }) => {
                    // Grow-and-retry: re-run the same rows with the
                    // speculative allocation grown to the actual output
                    // size. The grown chunk's estimate equals its real
                    // output, so it cannot overflow again; if it no
                    // longer fits the epoch it fails as OOM and takes
                    // the ordinary re-split/demote ladder.
                    sim.note_recovery(format!(
                        "grow chunk ({},{}) rows {}..{} to {} output bytes and retry",
                        w.parent.row, w.parent.col, w.rows.start, w.rows.end, needed
                    ));
                    let grown = match w.source {
                        WorkSource::Orig(id) => pg.chunk(id).grown(),
                        WorkSource::Sub(si) => sub_store[si].grown(),
                    };
                    sub_store.push(grown);
                    next.push(WorkItem {
                        parent: w.parent,
                        rows: w.rows.clone(),
                        depth: w.depth,
                        source: WorkSource::Sub(sub_store.len() - 1),
                    });
                }
                Some(f) => {
                    if !policy.demote_to_cpu {
                        return Err(match f {
                            ChunkFailure::Oom(e) => crate::OocError::DeviceMemory(*e),
                            ChunkFailure::Faults => crate::OocError::Worker {
                                worker: "gpu".into(),
                                message: format!(
                                    "chunk ({},{}) exhausted its retry budget",
                                    w.parent.row, w.parent.col
                                ),
                            },
                            ChunkFailure::EstimateOverflow { .. } => {
                                unreachable!("estimate overflows are always grown and retried")
                            }
                            ChunkFailure::Deadline => {
                                unreachable!("deadline failures are re-queued for supervision")
                            }
                        });
                    }
                    report.demotions += 1;
                    if let Some(s) = stats.get_mut(&w.parent) {
                        s.demotions += 1;
                        s.demotion_cause.get_or_insert(match f {
                            ChunkFailure::Oom(_) => DemotionCause::DeviceMemory,
                            ChunkFailure::Faults => DemotionCause::Faults,
                            ChunkFailure::EstimateOverflow { .. } => {
                                unreachable!("estimate overflows are always grown and retried")
                            }
                            ChunkFailure::Deadline => {
                                unreachable!("deadline failures are re-queued for supervision")
                            }
                        });
                    }
                    let p = match w.source {
                        WorkSource::Orig(id) => pg.chunk(id),
                        WorkSource::Sub(si) => &sub_store[si],
                    };
                    let cpu_ns = config.cpu_chunk_ns(p.flops, p.nnz);
                    sim.note_recovery(format!(
                        "demote chunk ({},{}) rows {}..{} to CPU",
                        w.parent.row, w.parent.col, w.rows.start, w.rows.end
                    ));
                    // Demoted chunks run in the CPU fault domain:
                    // transient CPU-kernel faults cost a recompute plus
                    // backoff before the clean pass lands.
                    if let Some(h) = host.as_mut() {
                        let mut attempt = 0u32;
                        while h.roll(HostFaultKind::CpuKernel) {
                            attempt += 1;
                            let wait = backoff_ns(sim.cost(), attempt);
                            report.cpu_kernel_faults += 1;
                            report.retries += 1;
                            report.backoff_ns += wait;
                            report.time_lost_ns += cpu_ns + wait;
                            sim.host_compute(
                                cpu_ns + wait,
                                format!("CPU retry chunk ({},{})", w.parent.row, w.parent.col),
                            );
                        }
                    }
                    sim.host_compute(
                        cpu_ns,
                        format!("CPU fallback chunk ({},{})", w.parent.row, w.parent.col),
                    );
                    if let WorkSource::Sub(si) = w.source {
                        pieces
                            .entry(w.parent)
                            .or_default()
                            .push((w.rows.start, sub_store[si].result.clone()));
                    }
                }
            }
        }

        // --- Pressure-driven re-planning: cumulative capacity shrink
        // or repeated estimate overflows signal *sustained* pressure;
        // re-split every remaining multi-row item in one batch via the
        // cached planner prefix sums instead of letting each chunk walk
        // the per-chunk re-split ladder alone. Each trigger fires once.
        let capacity_pressure = sim.memory().capacity() * 4 < planning_capacity * 3;
        let overflow_pressure = report.estimate_overflows >= 3;
        let fire = (capacity_pressure && !replanned_capacity)
            || (overflow_pressure && !replanned_overflow);
        if fire
            && next
                .iter()
                .any(|w| w.rows.len() > 1 && w.depth < policy.max_resplit_depth)
        {
            if capacity_pressure {
                replanned_capacity = true;
            }
            if overflow_pressure {
                replanned_overflow = true;
            }
            report.replans += 1;
            degradations.push(DegradationEvent {
                cause: DegradationCause::Replan,
                at_ns: sim.now(),
                cost_ns: 0,
            });
            sim.note_recovery(format!(
                "re-plan {} remaining work items under sustained pressure",
                next.len()
            ));
            let items = std::mem::take(&mut next);
            for w in items {
                if w.rows.len() <= 1 || w.depth >= policy.max_resplit_depth {
                    next.push(w);
                    continue;
                }
                for sub in split_range_by_flops(&pg.row_flops_prefix, &w.rows, 2) {
                    if sub.is_empty() {
                        continue;
                    }
                    if let Some(h) = host.as_mut() {
                        while h.roll(HostFaultKind::HostAlloc) {
                            let wait = backoff_ns(sim.cost(), 1);
                            report.host_alloc_faults += 1;
                            report.time_lost_ns += wait;
                            sim.host_compute(wait, "host-allocation stall (re-plan)");
                        }
                    }
                    let p = phases::prepare_chunk(ChunkJob {
                        a_panel: CsrView::rows(a, sub.start, sub.end),
                        b_panel: &pg.col_panels[w.parent.col].matrix,
                        chunk_id: next_sub_id,
                    });
                    next_sub_id += 1;
                    sub_store.push(p);
                    next.push(WorkItem {
                        parent: w.parent,
                        rows: sub,
                        depth: w.depth + 1,
                        source: WorkSource::Sub(sub_store.len() - 1),
                    });
                }
            }
        }
        pending = next;
    }

    let mut overrides = HashMap::new();
    for (parent, mut parts) in pieces {
        parts.sort_by_key(|&(start, _)| start);
        let refs: Vec<&CsrMatrix> = parts.iter().map(|(_, m)| m).collect();
        debug_assert_eq!(
            refs.iter().map(|m| m.n_rows()).sum::<usize>(),
            pg.plan.row_ranges[parent.row].len(),
            "sub-chunk results must tile the parent chunk exactly"
        );
        overrides.insert(parent, sparse::ops::vstack(&refs)?);
    }
    let mut chunk_stats: Vec<ChunkMetrics> = stats.into_values().collect();
    chunk_stats.sort_unstable_by_key(|s| (s.row, s.col));
    Ok(RecoveredOutcome {
        sim_ns: sim.finish(),
        report,
        overrides,
        chunk_stats,
        degradations,
    })
}

/// Estimator accuracy accounting for a speculative run: per-chunk
/// hit/miss against the estimated allocations, summed estimated vs
/// actual output nonzeros, the applied headroom, and the
/// grow-and-retry count from the recovery report. Shared by every
/// executor that honors the estimator (async, hybrid, multi-GPU).
pub(crate) fn estimator_stats(
    config: &OocConfig,
    pg: &PreparedGrid,
    model: &EstModel,
    recovery: &RecoveryReport,
) -> EstimatorStats {
    let mut est_nnz = 0u64;
    let mut chunk_hits = 0u64;
    let mut chunk_misses = 0u64;
    let mut overflow_rows = 0u64;
    for p in &pg.prepared {
        if let Some(spec) = &p.spec {
            est_nnz += spec.est_nnz;
            overflow_rows += spec.row_overflows;
            if spec.overflowed(p.out_bytes) {
                chunk_misses += 1;
            } else {
                chunk_hits += 1;
            }
        }
    }
    EstimatorStats {
        kind: config.estimator.kind.name().to_string(),
        sampled_rows: model.sampled_rows as u64,
        est_nnz,
        actual_nnz: pg.total_nnz(),
        chunk_hits,
        chunk_misses,
        overflow_rows,
        retries: recovery.estimate_overflows,
        headroom: config.estimator.headroom,
    }
}

/// Target over-allocation for an adapted headroom: aim to allocate
/// ~10% above the actual output.
const ADAPT_TARGET_OVER: f64 = 1.10;
/// Never adapt below this headroom — a hair of margin keeps ordinary
/// model jitter from turning every chunk into a grow-and-retry.
const ADAPT_MIN_HEADROOM: f64 = 1.05;

/// Adapts the speculative headroom for the next link of a chained run
/// (`power`, `triple_product`) from the previous link's estimator
/// accuracy. The previous iteration's actual nnz(C) is in hand, so
/// re-estimating with the same fixed headroom wastes allocation:
///
/// * all chunks hit → shrink toward `est/actual ≈ ADAPT_TARGET_OVER`,
///   floored at `ADAPT_MIN_HEADROOM` and capped at the configured base;
/// * any chunk missed → fall back to the configured base headroom.
///
/// Only allocation-sizing inputs (chunk hits/misses, estimated vs
/// actual nnz) feed the adaptation — they are pure grid properties, so
/// faulted and clean chains adapt identically and chained results stay
/// bit-identical under fault injection. The applied value is recorded
/// in [`EstimatorStats::headroom`] per iteration.
pub(crate) fn adapt_headroom(
    base: accum::estimate::EstimateConfig,
    prev: Option<&EstimatorStats>,
) -> accum::estimate::EstimateConfig {
    if base.kind == EstimatorKind::Exact {
        return base;
    }
    let Some(prev) = prev else { return base };
    if prev.chunk_misses > 0 || prev.actual_nnz == 0 {
        return base;
    }
    // est/actual is (model error) x (applied headroom); divide the
    // target through it to land the next allocation near the target.
    let over = prev.est_nnz as f64 / prev.actual_nnz as f64;
    if !(over.is_finite() && over > 0.0) {
        return base;
    }
    let next = (prev.headroom * ADAPT_TARGET_OVER / over)
        .max(ADAPT_MIN_HEADROOM)
        .min(base.headroom);
    accum::estimate::EstimateConfig {
        headroom: next,
        ..base
    }
}

/// The out-of-core GPU SpGEMM executor.
pub struct OutOfCoreGpu {
    config: OocConfig,
}

/// A completed out-of-core run.
#[derive(Debug)]
pub struct OocRun {
    /// The full product matrix.
    pub c: CsrMatrix,
    /// Simulated end-to-end time, ns (includes all output transfers).
    pub sim_ns: SimTime,
    /// Total flops of the multiplication.
    pub flops: u64,
    /// Output nonzeros.
    pub nnz_c: u64,
    /// The device timeline.
    pub timeline: Timeline,
    /// The panel plan used.
    pub plan: PanelPlan,
    /// Chunk execution order.
    pub order: Vec<ChunkId>,
    /// What recovery did (all-zero for a fault-free run).
    pub recovery: RecoveryReport,
    /// Structured run metrics (DESIGN.md §9).
    pub metrics: Metrics,
}

impl OocRun {
    /// GFLOPS over simulated time — the paper's Figure 7 metric ("the
    /// execution times measured for GFLOPS calculation include the time
    /// for transferring all chunks of the output matrix").
    pub fn gflops(&self) -> f64 {
        if self.sim_ns == 0 {
            return 0.0;
        }
        self.flops as f64 / self.sim_ns as f64
    }

    /// Simulated milliseconds.
    pub fn sim_ms(&self) -> f64 {
        self.sim_ns as f64 / 1e6
    }

    /// Fraction of the makespan spent on transfers (Figure 4 metric).
    pub fn transfer_fraction(&self) -> f64 {
        self.timeline.transfer_fraction()
    }
}

impl OutOfCoreGpu {
    /// Creates an executor with the given configuration.
    pub fn new(config: OocConfig) -> Self {
        OutOfCoreGpu { config }
    }

    /// Access to the configuration.
    pub fn config(&self) -> &OocConfig {
        &self.config
    }

    /// Computes `C = a · b` out-of-core.
    pub fn multiply(&self, a: &CsrMatrix, b: &CsrMatrix) -> Result<OocRun> {
        let pg = prepare_grid(a, b, &self.config)?;
        self.multiply_prepared(a, &pg)
    }

    /// Runs the simulation/recovery/assembly epilogue of [`multiply`]
    /// against an already-prepared grid. The grid is borrowed, so a
    /// long-lived frontend can cache one [`PreparedGrid`] per operand
    /// pair and serve many requests from it — the run is bit-identical
    /// to a one-shot [`multiply`] with the same configuration because
    /// preparation is deterministic and the epilogue never mutates the
    /// grid. The caller must have prepared the grid under a
    /// configuration whose planning-relevant fields (panels, estimator,
    /// column partitioner, device geometry) match `self.config()`.
    pub fn multiply_prepared(&self, a: &CsrMatrix, pg: &PreparedGrid) -> Result<OocRun> {
        // Sync mode follows Algorithm 3's natural loop; async mode
        // reorders by decreasing flops when configured (Section IV-C),
        // grouped by row panel to keep the A panel resident.
        let order = match (self.config.mode, self.config.reorder_chunks) {
            (ExecMode::Async, true) => ChunkGrid::grouped_desc(&pg.grid.sorted_desc()),
            _ => pg.grid.natural_order(),
        };
        // Speculative grids route through the recovering orchestration
        // even without a fault plan: estimate overflows surface as
        // recoverable chunk failures there. Host fault plans and run
        // budgets are enforced by the same supervised pass loop.
        let recovering = self.config.fault_plan.is_some()
            || self.config.host_faults.is_some()
            || self.config.budget.is_some()
            || pg.est_model.is_some();
        let (sim_ns, timeline, overrides, recovery, metrics) = if recovering {
            let mut sim = match &self.config.fault_plan {
                Some(plan) => GpuSim::with_faults(
                    self.config.device.clone(),
                    self.config.cost.clone(),
                    plan.clone(),
                ),
                None => GpuSim::new(self.config.device.clone(), self.config.cost.clone()),
            };
            let rec = simulate_order_recovering(&mut sim, a, pg, &order, &self.config)?;
            let metrics = Metrics::collect(&sim, rec.sim_ns)
                .with_chunks(rec.chunk_stats)
                .with_degradations(rec.degradations);
            (
                rec.sim_ns,
                sim.into_timeline(),
                rec.overrides,
                rec.report,
                metrics,
            )
        } else {
            let mut sim = GpuSim::new(self.config.device.clone(), self.config.cost.clone());
            let sim_ns = simulate_order(&mut sim, pg, &order, &self.config)?;
            let metrics = Metrics::collect(&sim, sim_ns);
            (
                sim_ns,
                sim.into_timeline(),
                HashMap::new(),
                RecoveryReport::default(),
                metrics,
            )
        };
        let metrics = match &pg.est_model {
            Some(model) => {
                metrics.with_estimator(estimator_stats(&self.config, pg, model, &recovery))
            }
            None => metrics,
        };
        debug_assert!(timeline.validate().is_ok(), "timeline invariants violated");

        let chunk_refs: Vec<(ChunkId, &CsrMatrix)> = order
            .iter()
            .map(|info| {
                let result = overrides.get(&info.id).unwrap_or(&pg.chunk(info.id).result);
                (info.id, result)
            })
            .collect();
        let c = assemble(&pg.plan, &chunk_refs);
        Ok(OocRun {
            flops: pg.total_flops(),
            nnz_c: pg.total_nnz(),
            sim_ns,
            timeline,
            order: order.iter().map(|i| i.id).collect(),
            plan: pg.plan.clone(),
            recovery,
            metrics,
            c,
        })
    }
}

/// A completed chained computation (triple product, matrix power):
/// the final matrix plus the *aggregated* accounting of every
/// constituent multiplication. Earlier versions returned only
/// `(matrix, time)` and silently dropped the per-iteration metrics and
/// recovery reports, so a faulted k-hop run looked clean.
#[derive(Debug)]
pub struct ChainedRun {
    /// The final product matrix.
    pub c: CsrMatrix,
    /// Sum of the simulated times of all constituent multiplications
    /// (the products are data-dependent and cannot overlap).
    pub sim_ns: SimTime,
    /// All constituent recovery reports merged; non-zero counters mean
    /// faults were injected *somewhere* in the chain.
    pub recovery: RecoveryReport,
    /// Per-multiplication metrics, in execution order.
    pub metrics: Vec<Metrics>,
}

impl OutOfCoreGpu {
    /// Galerkin triple product `R · A · P` — the algebraic-multigrid
    /// kernel the paper's introduction motivates ("preconditioners such
    /// as algebraic multigrid"). Two chained out-of-core
    /// multiplications; the returned time is their sum.
    pub fn triple_product(
        &self,
        r: &CsrMatrix,
        a: &CsrMatrix,
        p: &CsrMatrix,
    ) -> Result<ChainedRun> {
        let ra = self.multiply(r, a)?;
        // The first product's estimator accuracy is in hand — adapt
        // the second product's headroom instead of re-applying the
        // fixed configured margin (see `adapt_headroom`).
        let est = adapt_headroom(self.config.estimator, ra.metrics.estimator.as_ref());
        let rap = self.with_estimator(est).multiply(&ra.c, p)?;
        let mut recovery = ra.recovery;
        recovery.merge(&rap.recovery);
        Ok(ChainedRun {
            c: rap.c,
            sim_ns: ra.sim_ns + rap.sim_ns,
            recovery,
            metrics: vec![ra.metrics, rap.metrics],
        })
    }

    /// A clone of this executor with a different estimate
    /// configuration — the chained runs use it to apply per-iteration
    /// adapted headrooms.
    fn with_estimator(&self, est: accum::estimate::EstimateConfig) -> OutOfCoreGpu {
        if est == self.config.estimator {
            return OutOfCoreGpu {
                config: self.config.clone(),
            };
        }
        OutOfCoreGpu {
            config: self.config.clone().estimator(est),
        }
    }

    /// Matrix power `A^k` (`k >= 1`) by repeated out-of-core
    /// multiplication — the expansion step of Markov clustering run
    /// `k - 1` times.
    pub fn power(&self, a: &CsrMatrix, k: u32) -> Result<ChainedRun> {
        if k == 0 {
            return Err(crate::OocError::Config("power requires k >= 1".into()));
        }
        let mut acc = a.clone();
        let mut total: SimTime = 0;
        let mut recovery = RecoveryReport::default();
        let mut metrics = Vec::new();
        let mut est = self.config.estimator;
        for _ in 1..k {
            // Each hop re-estimates with a headroom adapted from the
            // previous hop's observed hit-rate instead of the fixed
            // configured margin (see `adapt_headroom`).
            let run = self.with_estimator(est).multiply(&acc, a)?;
            est = adapt_headroom(self.config.estimator, run.metrics.estimator.as_ref());
            acc = run.c;
            total += run.sim_ns;
            recovery.merge(&run.recovery);
            metrics.push(run.metrics);
        }
        Ok(ChainedRun {
            c: acc,
            sim_ns: total,
            recovery,
            metrics,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpu_spgemm::reference;
    use sparse::gen::{erdos_renyi, grid2d_stencil};

    #[test]
    fn triple_product_matches_chained_reference() {
        let r = erdos_renyi(40, 80, 0.05, 1);
        let a = erdos_renyi(80, 80, 0.05, 2);
        let p = erdos_renyi(80, 40, 0.05, 3);
        let exec = OutOfCoreGpu::new(OocConfig::with_device_memory(1 << 19));
        let run = exec.triple_product(&r, &a, &p).unwrap();
        assert!(run.sim_ns > 0);
        let expect = reference::multiply(&reference::multiply(&r, &a).unwrap(), &p).unwrap();
        assert!(run.c.approx_eq(&expect, 1e-9));
        assert_eq!(run.metrics.len(), 2, "one metrics record per product");
        assert_eq!(run.recovery, RecoveryReport::default());
    }

    #[test]
    fn power_matches_repeated_reference() {
        let a = erdos_renyi(60, 60, 0.05, 4);
        let exec = OutOfCoreGpu::new(OocConfig::with_device_memory(1 << 19));
        let p1 = exec.power(&a, 1).unwrap();
        assert_eq!(p1.c, a);
        assert_eq!(p1.sim_ns, 0);
        assert!(p1.metrics.is_empty());
        let p3 = exec.power(&a, 3).unwrap();
        assert!(p3.sim_ns > 0);
        assert_eq!(p3.metrics.len(), 2);
        let expect = reference::multiply(&reference::multiply(&a, &a).unwrap(), &a).unwrap();
        assert!(p3.c.approx_eq(&expect, 1e-9));
        assert!(exec.power(&a, 0).is_err());
    }

    #[test]
    fn faulted_power_is_not_reported_clean() {
        // Regression: chained runs used to drop per-iteration recovery
        // reports and metrics, so a faulted k-hop run looked clean.
        let a = erdos_renyi(120, 120, 0.05, 5);
        let plan = gpu_sim::FaultPlan::seeded(42).all_rates(0.25);
        let exec = OutOfCoreGpu::new(OocConfig::with_device_memory(1 << 19).fault_plan(plan));
        let run = exec.power(&a, 3).unwrap();
        let clean = OutOfCoreGpu::new(OocConfig::with_device_memory(1 << 19))
            .power(&a, 3)
            .unwrap();
        assert!(
            run.recovery.kernel_faults
                + run.recovery.copy_faults
                + run.recovery.alloc_faults
                + run.recovery.pool_faults
                > 0,
            "the fault plan must actually fire"
        );
        assert!(run.recovery.retries > 0 || run.recovery.demotions > 0);
        assert_eq!(run.metrics.len(), 2);
        assert!(run.c.approx_eq(&clean.c, 0.0), "faults must not change C");
    }

    fn fixture() -> CsrMatrix {
        erdos_renyi(600, 600, 0.03, 7)
    }

    fn small_config() -> OocConfig {
        // ~1.5 MiB device; the fixture's product is a few MiB, so the
        // run is genuinely out-of-core.
        OocConfig::with_device_memory(3 << 19)
    }

    #[test]
    fn async_result_matches_reference() {
        let a = fixture();
        let run = OutOfCoreGpu::new(small_config()).multiply(&a, &a).unwrap();
        let expect = reference::multiply(&a, &a).unwrap();
        assert!(run.c.approx_eq(&expect, 1e-9));
        assert!(run.plan.num_chunks() > 1, "must be partitioned");
        assert!(run.sim_ns > 0);
        run.timeline.validate().unwrap();
    }

    #[test]
    fn sync_result_matches_reference() {
        let a = fixture();
        let run = OutOfCoreGpu::new(small_config().mode(ExecMode::Sync))
            .multiply(&a, &a)
            .unwrap();
        let expect = reference::multiply(&a, &a).unwrap();
        assert!(run.c.approx_eq(&expect, 1e-9));
    }

    #[test]
    fn async_beats_sync() {
        // The headline claim of Section IV: overlap + pre-allocation
        // beat the synchronous baseline.
        let a = grid2d_stencil(36, 36, 2, 3);
        let cfg = OocConfig::with_device_memory(2 << 20).panels(3, 3);
        let sync = OutOfCoreGpu::new(cfg.clone().mode(ExecMode::Sync))
            .multiply(&a, &a)
            .unwrap();
        let asyn = OutOfCoreGpu::new(cfg.mode(ExecMode::Async))
            .multiply(&a, &a)
            .unwrap();
        assert!(
            asyn.sim_ns < sync.sim_ns,
            "async {} !< sync {}",
            asyn.sim_ns,
            sync.sim_ns
        );
        assert!(
            asyn.c.approx_eq(&sync.c, 1e-9),
            "both modes must agree numerically"
        );
    }

    #[test]
    fn reordering_executes_descending_flops() {
        let a = fixture();
        let run = OutOfCoreGpu::new(small_config().panels(2, 3))
            .multiply(&a, &a)
            .unwrap();
        assert_eq!(run.order.len(), 6);
        // Order must be a permutation of the grid.
        let mut seen = run.order.clone();
        seen.sort_by_key(|id| (id.row, id.col));
        seen.dedup();
        assert_eq!(seen.len(), 6);
    }

    #[test]
    fn explicit_panels_are_respected() {
        let a = fixture();
        let run = OutOfCoreGpu::new(OocConfig::with_device_memory(64 << 20).panels(2, 2))
            .multiply(&a, &a)
            .unwrap();
        assert_eq!(run.plan.row_panels(), 2);
        assert_eq!(run.plan.col_panels(), 2);
    }

    #[test]
    fn gflops_is_flops_over_time() {
        let a = fixture();
        let run = OutOfCoreGpu::new(small_config()).multiply(&a, &a).unwrap();
        let expect = run.flops as f64 / run.sim_ns as f64;
        assert!((run.gflops() - expect).abs() < 1e-12);
        assert!(run.transfer_fraction() > 0.0);
    }

    #[test]
    fn rectangular_product_works() {
        let a = erdos_renyi(300, 200, 0.05, 1);
        let b = erdos_renyi(200, 400, 0.05, 2);
        let run = OutOfCoreGpu::new(OocConfig::with_device_memory(1 << 19))
            .multiply(&a, &b)
            .unwrap();
        let expect = reference::multiply(&a, &b).unwrap();
        assert!(run.c.approx_eq(&expect, 1e-9));
        assert_eq!(run.c.n_rows(), 300);
        assert_eq!(run.c.n_cols(), 400);
    }

    #[test]
    fn dimension_mismatch_is_error() {
        let a = CsrMatrix::zeros(10, 20);
        let b = CsrMatrix::zeros(30, 10);
        assert!(OutOfCoreGpu::new(small_config()).multiply(&a, &b).is_err());
    }
}
