#![warn(missing_docs)]

//! Out-of-core CPU-GPU SpGEMM — the reproduction of *"Scaling Sparse
//! Matrix Multiplication on CPU-GPU Nodes"* (Xia, Jiang, Agrawal,
//! Ramnath; IPDPS 2021).
//!
//! The library multiplies sparse matrices whose output does not fit in
//! GPU device memory by partitioning `A` into row panels and `B` into
//! column panels (Algorithm 3), computing each output chunk
//! `C[r][c] = A[r] · B[c]` with a spECK-style in-core kernel, and
//! streaming chunks back to host memory. On top of that framework it
//! implements the paper's three contributions:
//!
//! * **asynchronous execution** ([`pipeline`]) — double-buffered
//!   streams, a pre-allocated memory pool instead of `cudaMalloc`, and
//!   the Figure 6 transfer schedule (row-analysis results first, output
//!   split 33 % / 67 % across the next chunk's symbolic and numeric
//!   phases);
//! * **chunk reordering** ([`chunks`]) — chunks execute in decreasing
//!   flop order so each chunk's computation hides under the previous
//!   chunk's (larger) transfer;
//! * **hybrid CPU+GPU execution** ([`hybrid`], Algorithm 4) — the
//!   densest chunks go to the GPU until a fixed fraction (65 %) of the
//!   total flops is assigned; a Nagasaka-style multicore executor
//!   processes the rest concurrently.
//!
//! The "GPU" is the deterministic device simulator from the `gpu-sim`
//! crate (see DESIGN.md for the substitution argument); all numeric
//! results are real and verified against a sequential reference.
//!
//! # Quickstart
//!
//! ```
//! use oocgemm::{OocConfig, OutOfCoreGpu};
//! use sparse::gen::erdos_renyi;
//!
//! let a = erdos_renyi(500, 500, 0.03, 1);
//! // A small simulated device forces out-of-core execution.
//! let config = OocConfig::with_device_memory(1 << 20);
//! let run = OutOfCoreGpu::new(config).multiply(&a, &a).unwrap();
//! assert_eq!(run.c.n_rows(), 500);
//! println!("simulated {:.3} ms, {:.2} GFLOPS", run.sim_ms(), run.gflops());
//! ```

pub mod assemble;
pub mod chunks;
pub mod config;
pub mod error;
pub mod executor;
pub mod faults;
pub mod hybrid;
pub mod metrics;
pub mod multigpu;
pub mod pipeline;
pub mod plan;
pub mod recovery;
pub mod report;
mod scheduler;
pub mod service;
pub mod spill;
pub mod unified;
pub mod verify;

pub use accum::estimate::{EstModel, EstimateConfig, EstimatorKind};
pub use chunks::{ChunkGrid, ChunkId, ChunkInfo};
pub use config::{ExecMode, HybridConfig, OocConfig, SchedulerKind, DEFAULT_GPU_RATIO};
pub use cpu_spgemm::CpuKernel;
pub use error::OocError;
pub use executor::{
    prepare_grid, prepare_grid_pooled, prepare_grid_serial, ChainedRun, OocRun, OutOfCoreGpu,
    PreparedGrid,
};
pub use faults::{HostFaultKind, HostFaultPlan, HostFaultState, HostFaultStats};
pub use gpu_sim::FaultPlan;
pub use hybrid::{auto_gpu_ratio, Hybrid, HybridRun, RatioSearch};
pub use metrics::{
    ChunkMetrics, CpuKernelStats, DegradationCause, DegradationEvent, DemotionCause,
    EstimatorStats, Metrics, SchedulerStats, ServiceStats, TenantStats,
};
pub use multigpu::{multiply_multi_gpu, MultiGpuConfig, MultiGpuRun};
pub use plan::{PanelPlan, Planner};
pub use recovery::{RecoveryPolicy, RecoveryReport, RunBudget};
pub use report::RunReport;
pub use service::{
    Completion, Outcome, Request, RequestOp, Service, ServiceConfig, ShedReason, TenantQuota,
    DEFAULT_AGING_NS,
};
pub use spill::{multiply_to_disk, SpilledMatrix, SpilledRun};
pub use unified::{multiply_unified, UnifiedRun};
pub use verify::{verify_product, Verdict};

/// Result alias for out-of-core operations.
pub type Result<T> = std::result::Result<T, OocError>;
