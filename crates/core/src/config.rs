//! Configuration of the out-of-core and hybrid executors.

use crate::faults::HostFaultPlan;
use crate::recovery::{RecoveryPolicy, RunBudget};
use accum::estimate::{EstimateConfig, EstimatorKind};
use cpu_spgemm::CpuKernel;
use gpu_sim::{CostModel, CpuKernelClass, DeviceProps, FaultPlan};
use sparse::partition::ColPartitioner;

/// Synchronous vs asynchronous out-of-core execution (Section IV).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// "Synchronous, partitioned spECK": one stream, dynamic device
    /// allocations, no overlap — the paper's baseline.
    Sync,
    /// The paper's asynchronous design: two streams, pre-allocated
    /// pool, Figure 6 transfer schedule.
    #[default]
    Async,
}

/// Default simulated device memory: the paper's 16 GB V100 scaled by
/// the same ~500× factor as the matrix suite (DESIGN.md), so every
/// suite matrix stays genuinely out-of-core.
pub const DEFAULT_DEVICE_MEMORY: u64 = 32 << 20;

/// Fraction of output rows in the first transfer portion of the
/// Figure 6 schedule ("the first portion contains 33 % of the total
/// number of rows").
pub const DEFAULT_SPLIT_FRACTION: f64 = 0.33;

/// Default fraction of total flops assigned to the GPU in the hybrid
/// executor ("a fixed value of 65 % can achieve good performance for
/// all of our input matrices", Section III-C).
pub const DEFAULT_GPU_RATIO: f64 = 0.65;

/// Configuration of the out-of-core GPU executor.
#[derive(Clone, Debug)]
pub struct OocConfig {
    /// Simulated device.
    pub device: DeviceProps,
    /// Cost model.
    pub cost: CostModel,
    /// Execution mode.
    pub mode: ExecMode,
    /// Explicit panel counts `(row_panels, col_panels)`; `None` lets
    /// the planner choose from the memory budget.
    pub panels: Option<(usize, usize)>,
    /// Reorder chunks by decreasing flops (Section IV-C). Only
    /// meaningful in async mode.
    pub reorder_chunks: bool,
    /// First-portion row fraction of the Figure 6 output split.
    pub split_fraction: f64,
    /// Column partitioner implementation.
    pub col_partitioner: ColPartitioner,
    /// Use pinned host buffers for transfers.
    pub pinned: bool,
    /// Number of streams/buffer epochs in the async pipeline. The
    /// paper uses 2 (double buffering); deeper pipelines trade device
    /// memory for slack in hiding host-side gaps.
    pub pipeline_depth: usize,
    /// Cap on how many chunks the parallel grid preparation
    /// materializes concurrently (`None` = the whole grid at once).
    /// Each in-flight chunk holds its full output in host memory while
    /// it is prepared, so huge grids on small hosts may want a bound;
    /// the cap never changes results, only peak memory and overlap.
    /// Must be positive when set.
    pub prepare_parallelism: Option<usize>,
    /// Deterministic fault schedule. `Some` routes the run through the
    /// self-healing pipeline (retries, re-splits, CPU demotion); the
    /// assembled output stays bit-identical to the fault-free run.
    pub fault_plan: Option<FaultPlan>,
    /// Bounds on the recovery actions taken under a fault plan.
    pub recovery: RecoveryPolicy,
    /// Output-size estimator driving planning and speculative
    /// execution. Non-exact kinds (the default) let async runs plan
    /// panels and allocate chunk buffers from a sampled nnz(C) model
    /// instead of the exact symbolic pass; an under-predicted chunk
    /// surfaces as a recoverable `EstimateOverflow` and is grown,
    /// re-split, or demoted, so C stays bit-identical to the exact
    /// path. `EstimatorKind::Exact` restores the full symbolic
    /// pre-pass everywhere. Sync, hybrid, multi-GPU, and spill runs
    /// always use the exact path regardless of this setting.
    pub estimator: EstimateConfig,
    /// Deterministic host-side fault schedule (spill I/O, shard
    /// corruption, CPU kernels, host allocation pressure). Like the
    /// device plan, it only perturbs simulated time and which
    /// recovery path runs — never the numeric result.
    pub host_faults: Option<HostFaultPlan>,
    /// Per-run simulated-time budget. `Some` arms the deadline
    /// watchdog: the executor degrades rung by rung as the deadline
    /// approaches and fails with [`crate::OocError::DeadlineExceeded`]
    /// instead of spiralling when the budget is unmeetable. The
    /// service frontend forwards each request's budget here verbatim
    /// (so a budgeted service run is bit-identical to the same
    /// one-shot call) and additionally treats `sim_deadline_ns` as the
    /// request's service-level deadline from arrival, driving
    /// earliest-deadline dispatch (DESIGN.md §14).
    pub budget: Option<RunBudget>,
    /// Which CPU SpGEMM kernel the CPU side runs (and is priced for):
    /// CPU-assigned hybrid chunks, demoted/recovered chunks, and the
    /// multi-GPU CPU worker. `Adaptive` (the default) dispatches per
    /// row group; fixed values force one method, mainly for
    /// benchmarking and the `--cpu-kernel` sweep.
    pub cpu_kernel: CpuKernel,
}

impl OocConfig {
    /// Paper-default configuration at the scaled device size.
    pub fn paper_default() -> Self {
        Self::with_device_memory(DEFAULT_DEVICE_MEMORY)
    }

    /// Paper-default configuration with an explicit device memory.
    pub fn with_device_memory(bytes: u64) -> Self {
        OocConfig {
            device: DeviceProps::v100_scaled(bytes),
            cost: CostModel::calibrated(),
            mode: ExecMode::Async,
            panels: None,
            reorder_chunks: true,
            split_fraction: DEFAULT_SPLIT_FRACTION,
            col_partitioner: ColPartitioner::ParallelPrefixSum,
            pinned: true,
            pipeline_depth: 2,
            prepare_parallelism: None,
            fault_plan: None,
            recovery: RecoveryPolicy::default(),
            estimator: EstimateConfig::default(),
            host_faults: None,
            budget: None,
            cpu_kernel: CpuKernel::default(),
        }
    }

    /// Switches the execution mode.
    pub fn mode(mut self, mode: ExecMode) -> Self {
        self.mode = mode;
        self
    }

    /// Fixes the panel grid explicitly.
    pub fn panels(mut self, rows: usize, cols: usize) -> Self {
        self.panels = Some((rows, cols));
        self
    }

    /// Enables/disables flop-descending chunk reordering.
    pub fn reorder(mut self, on: bool) -> Self {
        self.reorder_chunks = on;
        self
    }

    /// Caps how many chunks grid preparation materializes at once.
    pub fn prepare_parallelism(mut self, cap: usize) -> Self {
        self.prepare_parallelism = Some(cap);
        self
    }

    /// Installs a deterministic fault plan (see [`FaultPlan`]).
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Installs a deterministic host-side fault plan (see
    /// [`HostFaultPlan`]).
    pub fn host_faults(mut self, plan: HostFaultPlan) -> Self {
        self.host_faults = Some(plan);
        self
    }

    /// Installs a per-run simulated-time budget (see [`RunBudget`]).
    pub fn budget(mut self, budget: RunBudget) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Selects the CPU SpGEMM kernel (see [`CpuKernel`]).
    pub fn cpu_kernel(mut self, kernel: CpuKernel) -> Self {
        self.cpu_kernel = kernel;
        self
    }

    /// The pricing class the configured CPU kernel resolves to for a
    /// chunk with the given flops and output size. Fixed kernels map
    /// directly; `Adaptive` prices as merge on low-compression chunks
    /// (`flops <= 4·nnz`, where merging's sequential passes beat hash
    /// probes) and as hash otherwise. Chunk-level pricing sees no panel
    /// width, so the dense class is only reachable by fixing
    /// [`CpuKernel::Dense`].
    pub fn cpu_kernel_class(&self, flops: u64, nnz: u64) -> CpuKernelClass {
        match self.cpu_kernel {
            CpuKernel::Hash => CpuKernelClass::Hash,
            CpuKernel::Dense => CpuKernelClass::Dense,
            CpuKernel::Merge => CpuKernelClass::Merge,
            CpuKernel::Adaptive => {
                if flops <= 4 * nnz.max(1) {
                    CpuKernelClass::Merge
                } else {
                    CpuKernelClass::Hash
                }
            }
        }
    }

    /// Modeled CPU time for one chunk, priced for the configured
    /// kernel. With no measured calibration installed this equals the
    /// base `cpu_chunk_duration` for every kernel choice, so default
    /// schedules are unchanged.
    pub fn cpu_chunk_ns(&self, flops: u64, nnz: u64) -> gpu_sim::SimTime {
        self.cost
            .cpu_chunk_duration_for(self.cpu_kernel_class(flops, nnz), flops, nnz)
    }

    /// Sets the recovery policy used under a fault plan.
    pub fn recovery(mut self, policy: RecoveryPolicy) -> Self {
        self.recovery = policy;
        self
    }

    /// Replaces the whole estimator configuration.
    pub fn estimator(mut self, cfg: EstimateConfig) -> Self {
        self.estimator = cfg;
        self
    }

    /// Selects the estimator kind, keeping the other estimator knobs.
    pub fn estimator_kind(mut self, kind: EstimatorKind) -> Self {
        self.estimator.kind = kind;
        self
    }

    /// Sets the estimator's row sampling rate.
    pub fn sample_rate(mut self, rate: f64) -> Self {
        self.estimator.sample_rate = rate;
        self
    }

    /// Sets the multiplicative safety margin on estimated buffer
    /// sizes. Values below 1 deliberately under-allocate — useful for
    /// exercising overflow recovery.
    pub fn headroom(mut self, headroom: f64) -> Self {
        self.estimator.headroom = headroom;
        self
    }

    /// Validates internal consistency.
    pub fn validate(&self) -> crate::Result<()> {
        if !(0.0..=1.0).contains(&self.split_fraction) {
            return Err(crate::OocError::Config(format!(
                "split fraction {} outside [0, 1]",
                self.split_fraction
            )));
        }
        if let Some((r, c)) = self.panels {
            if r == 0 || c == 0 {
                return Err(crate::OocError::Config(
                    "panel counts must be positive".into(),
                ));
            }
        }
        if self.pipeline_depth < 2 {
            return Err(crate::OocError::Config(
                "the async pipeline needs at least 2 buffer epochs".into(),
            ));
        }
        if self.prepare_parallelism == Some(0) {
            return Err(crate::OocError::Config(
                "prepare_parallelism must be positive".into(),
            ));
        }
        if !(self.estimator.sample_rate > 0.0 && self.estimator.sample_rate <= 1.0) {
            return Err(crate::OocError::Config(format!(
                "estimator sample rate {} outside (0, 1]",
                self.estimator.sample_rate
            )));
        }
        // Headroom below 1 is allowed here (it forces overflow
        // recovery, which tests rely on); the CLI is stricter.
        if !(self.estimator.headroom.is_finite() && self.estimator.headroom > 0.0) {
            return Err(crate::OocError::Config(format!(
                "estimator headroom {} must be finite and positive",
                self.estimator.headroom
            )));
        }
        if let Some(p) = &self.fault_plan {
            let rates = [
                ("kernel", p.kernel_rate),
                ("copy", p.copy_rate),
                ("alloc", p.alloc_rate),
                ("pool", p.pool_rate),
            ];
            for (name, rate) in rates {
                if !(0.0..=1.0).contains(&rate) {
                    return Err(crate::OocError::Config(format!(
                        "{name} fault rate {rate} outside [0, 1]"
                    )));
                }
            }
            if let Some(s) = p.capacity_shrink {
                if !(0.0..=1.0).contains(&s.factor) || s.factor == 0.0 {
                    return Err(crate::OocError::Config(format!(
                        "capacity shrink factor {} outside (0, 1]",
                        s.factor
                    )));
                }
            }
        }
        if let Some(p) = &self.host_faults {
            for (name, rate) in p.rates() {
                if !(0.0..=1.0).contains(&rate) {
                    return Err(crate::OocError::Config(format!(
                        "host {name} fault rate {rate} outside [0, 1]"
                    )));
                }
            }
        }
        if let Some(b) = &self.budget {
            if b.sim_deadline_ns == 0 {
                return Err(crate::OocError::Config(
                    "deadline must be a positive simulated time".into(),
                ));
            }
            if !(0.0..=1.0).contains(&b.max_recovery_fraction) {
                return Err(crate::OocError::Config(format!(
                    "max recovery fraction {} outside [0, 1]",
                    b.max_recovery_fraction
                )));
            }
        }
        Ok(())
    }
}

impl Default for OocConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// How the hybrid executor distributes chunks between GPU and CPU.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub enum SchedulerKind {
    /// The paper's Algorithm 4: one up-front flop-ratio split, each
    /// side runs its fixed half to completion.
    Static,
    /// Dynamic work stealing on a shared two-ended queue: the GPU
    /// claims from the dense head, the CPU steals from the sparse
    /// tail, and the run ends when the queue drains. The configured
    /// flop ratio only seeds the GPU's initial prefetch.
    #[default]
    WorkStealing,
}

impl SchedulerKind {
    /// Stable lower-case name used in reports and CLI flags.
    pub fn name(&self) -> &'static str {
        match self {
            SchedulerKind::Static => "static",
            SchedulerKind::WorkStealing => "work-stealing",
        }
    }
}

/// Configuration of the hybrid CPU+GPU executor (Algorithm 4).
#[derive(Clone, Debug)]
pub struct HybridConfig {
    /// The GPU-side configuration.
    pub gpu: OocConfig,
    /// Fraction of total flops assigned to the GPU
    /// (`Ratio = S/(S+1)` in the paper). Under the work-stealing
    /// scheduler this only seeds the GPU's initial prefetch, with the
    /// endpoints as hard pins: `0.0` disables GPU claiming entirely
    /// and `1.0` disables CPU stealing.
    pub gpu_ratio: f64,
    /// Assign the *densest* chunks to the GPU (the paper's reordering,
    /// Fig 9). When false, chunks are assigned in natural grid order
    /// until the flop ratio is met — the "default implementation".
    pub reorder_assignment: bool,
    /// Chunk distribution strategy.
    pub scheduler: SchedulerKind,
}

impl HybridConfig {
    /// Paper defaults: 65 % of flops to the GPU, reordered assignment.
    pub fn paper_default() -> Self {
        HybridConfig {
            gpu: OocConfig::paper_default(),
            gpu_ratio: DEFAULT_GPU_RATIO,
            reorder_assignment: true,
            scheduler: SchedulerKind::default(),
        }
    }

    /// Sets the GPU flop ratio.
    pub fn ratio(mut self, ratio: f64) -> Self {
        self.gpu_ratio = ratio;
        self
    }

    /// Enables/disables density-ordered assignment.
    pub fn reorder(mut self, on: bool) -> Self {
        self.reorder_assignment = on;
        self
    }

    /// Selects the chunk distribution strategy.
    pub fn scheduler(mut self, kind: SchedulerKind) -> Self {
        self.scheduler = kind;
        self
    }

    /// Validates internal consistency.
    pub fn validate(&self) -> crate::Result<()> {
        self.gpu.validate()?;
        if !(0.0..=1.0).contains(&self.gpu_ratio) {
            return Err(crate::OocError::Config(format!(
                "GPU ratio {} outside [0, 1]",
                self.gpu_ratio
            )));
        }
        Ok(())
    }
}

impl Default for HybridConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid_and_paper_shaped() {
        let c = OocConfig::paper_default();
        c.validate().unwrap();
        assert_eq!(c.mode, ExecMode::Async);
        assert!(c.reorder_chunks);
        assert!((c.split_fraction - 0.33).abs() < 1e-12);
        assert_eq!(c.estimator.kind, EstimatorKind::RowSample);
        assert!(c.estimator.headroom >= 1.0);
        let h = HybridConfig::paper_default();
        h.validate().unwrap();
        assert!((h.gpu_ratio - 0.65).abs() < 1e-12);
    }

    #[test]
    fn validation_rejects_bad_values() {
        let mut c = OocConfig::paper_default();
        c.split_fraction = 1.5;
        assert!(c.validate().is_err());
        let mut c = OocConfig::paper_default();
        c.pipeline_depth = 1;
        assert!(c.validate().is_err());
        let c = OocConfig::paper_default().panels(0, 3);
        assert!(c.validate().is_err());
        let c = OocConfig::paper_default().prepare_parallelism(0);
        assert!(c.validate().is_err());
        let c = OocConfig::paper_default().sample_rate(0.0);
        assert!(c.validate().is_err());
        let c = OocConfig::paper_default().sample_rate(1.5);
        assert!(c.validate().is_err());
        let c = OocConfig::paper_default().headroom(0.0);
        assert!(c.validate().is_err());
        let c = OocConfig::paper_default().headroom(f64::INFINITY);
        assert!(c.validate().is_err());
        // Sub-1 headroom is legal at the library level: it forces the
        // overflow-recovery path.
        assert!(OocConfig::paper_default().headroom(0.5).validate().is_ok());
        assert!(OocConfig::paper_default()
            .prepare_parallelism(1)
            .validate()
            .is_ok());
        let h = HybridConfig::paper_default().ratio(-0.1);
        assert!(h.validate().is_err());
    }

    #[test]
    fn cpu_kernel_pricing_classes() {
        let c = OocConfig::paper_default();
        assert_eq!(c.cpu_kernel, CpuKernel::Adaptive);
        // Adaptive: low compression prices as merge, high as hash.
        assert_eq!(c.cpu_kernel_class(1000, 500), CpuKernelClass::Merge);
        assert_eq!(c.cpu_kernel_class(1000, 10), CpuKernelClass::Hash);
        // Fixed kernels map directly.
        let fixed = OocConfig::paper_default().cpu_kernel(CpuKernel::Dense);
        assert_eq!(fixed.cpu_kernel_class(1000, 10), CpuKernelClass::Dense);
        // Without a measured table every class prices like the base
        // model, so the default schedule cannot shift.
        assert_eq!(
            c.cpu_chunk_ns(1_000_000, 250_000),
            c.cost.cpu_chunk_duration(1_000_000, 250_000)
        );
        assert_eq!(
            fixed.cpu_chunk_ns(1_000_000, 250_000),
            c.cpu_chunk_ns(1_000_000, 250_000)
        );
    }

    #[test]
    fn builder_methods_chain() {
        let c = OocConfig::with_device_memory(1 << 20)
            .mode(ExecMode::Sync)
            .panels(2, 3)
            .reorder(false);
        assert_eq!(c.mode, ExecMode::Sync);
        assert_eq!(c.panels, Some((2, 3)));
        assert!(!c.reorder_chunks);
        assert_eq!(c.device.device_memory_bytes, 1 << 20);
    }
}
