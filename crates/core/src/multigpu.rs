//! Multi-GPU extension — the paper's stated future direction ("our
//! ultimate goal of continuing to scale SpGEMM computations to
//! arbitrarily large matrices", Section III-A).
//!
//! The chunk decomposition of Algorithm 3 makes chunks independent, so
//! they schedule naturally across several devices. Each simulated GPU
//! keeps its own streams, copy engines and memory — the model assumes
//! one PCIe root per device (no shared-bus contention), the
//! best-case assumption a single-node multi-GPU box approximates.
//!
//! Assignment is longest-processing-time (LPT) list scheduling over
//! estimated chunk costs: chunks sorted by decreasing flops, each
//! placed on the currently least-loaded worker, where a GPU's cost
//! estimate is its transfer-bound output size and the (optional) CPU
//! worker is costed by the calibrated CPU model — a direct
//! generalization of Algorithm 4's two-worker split.

use crate::assemble::assemble;
use crate::chunks::{ChunkGrid, ChunkId, ChunkInfo};
use crate::config::OocConfig;
use crate::executor::{prepare_grid, simulate_order, simulate_order_recovering};
use crate::metrics::Metrics;
use crate::plan::PanelPlan;
use crate::recovery::RecoveryReport;
use crate::Result;
use gpu_sim::{GpuSim, SimTime, Timeline};
use sparse::CsrMatrix;
use std::collections::HashMap;

/// Configuration of the multi-device executor.
#[derive(Clone, Debug)]
pub struct MultiGpuConfig {
    /// Per-device GPU configuration (device memory, cost model, async
    /// pipeline settings).
    pub gpu: OocConfig,
    /// Number of simulated GPUs (≥ 1).
    pub num_gpus: usize,
    /// Also keep a CPU worker in the pool.
    pub use_cpu: bool,
}

impl MultiGpuConfig {
    /// `num_gpus` devices with the paper-default per-device config.
    pub fn new(num_gpus: usize) -> Self {
        MultiGpuConfig {
            gpu: OocConfig::paper_default(),
            num_gpus,
            use_cpu: true,
        }
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        self.gpu.validate()?;
        if self.num_gpus == 0 {
            return Err(crate::OocError::Config("need at least one GPU".into()));
        }
        Ok(())
    }
}

/// Outcome of a multi-device run.
#[derive(Debug)]
pub struct MultiGpuRun {
    /// The full product.
    pub c: CsrMatrix,
    /// Completion time: the slowest worker.
    pub sim_ns: SimTime,
    /// Per-GPU completion times.
    pub gpu_ns: Vec<SimTime>,
    /// CPU worker completion time (0 when unused).
    pub cpu_ns: SimTime,
    /// Chunks per GPU.
    pub gpu_chunks: Vec<usize>,
    /// Chunks on the CPU worker.
    pub cpu_chunks: usize,
    /// Total flops.
    pub flops: u64,
    /// Per-GPU timelines.
    pub timelines: Vec<Timeline>,
    /// Per-GPU structured metrics, aligned with [`Self::timelines`].
    pub metrics: Vec<Metrics>,
    /// The panel plan used.
    pub plan: PanelPlan,
    /// Recovery activity merged across all devices (all-zero for a
    /// fault-free run).
    pub recovery: RecoveryReport,
}

impl MultiGpuRun {
    /// GFLOPS over the makespan.
    pub fn gflops(&self) -> f64 {
        if self.sim_ns == 0 {
            return 0.0;
        }
        self.flops as f64 / self.sim_ns as f64
    }
}

/// Computes `C = a · b` across `num_gpus` simulated devices (plus an
/// optional CPU worker).
pub fn multiply_multi_gpu(
    a: &CsrMatrix,
    b: &CsrMatrix,
    config: &MultiGpuConfig,
) -> Result<MultiGpuRun> {
    config.validate()?;
    let pg = prepare_grid(a, b, &config.gpu)?;
    let order = pg.grid.sorted_desc();
    let cost = &config.gpu.cost;

    // LPT list scheduling over estimated per-chunk costs.
    let workers = config.num_gpus + usize::from(config.use_cpu);
    let mut loads = vec![0u64; workers];
    let mut assignment: Vec<Vec<ChunkInfo>> = vec![Vec::new(); workers];
    for info in &order {
        let p = pg.chunk(info.id);
        // Cost estimates: GPU ≈ transfer-bound output; CPU ≈ model.
        let gpu_est = cost.copy_duration(p.out_bytes, true, config.gpu.pinned);
        let cpu_est = cost.cpu_chunk_duration(p.flops, p.nnz);
        let (best_w, _) = (0..workers)
            .map(|w| {
                let est = if w < config.num_gpus {
                    gpu_est
                } else {
                    cpu_est
                };
                (w, loads[w] + est)
            })
            .min_by_key(|&(_, load)| load)
            .expect("at least one worker");
        let est = if best_w < config.num_gpus {
            gpu_est
        } else {
            cpu_est
        };
        loads[best_w] += est;
        assignment[best_w].push(*info);
    }

    // Simulate each GPU on its own device; cost the CPU worker.
    let mut gpu_ns = Vec::with_capacity(config.num_gpus);
    let mut timelines = Vec::with_capacity(config.num_gpus);
    let mut metrics = Vec::with_capacity(config.num_gpus);
    let mut gpu_chunks = Vec::with_capacity(config.num_gpus);
    let mut recovery = RecoveryReport::default();
    let mut overrides: HashMap<ChunkId, CsrMatrix> = HashMap::new();
    for (device, chunks) in assignment.iter().take(config.num_gpus).enumerate() {
        let grouped = ChunkGrid::grouped_desc(chunks);
        let t = match &config.gpu.fault_plan {
            Some(plan) => {
                // Each device draws from its own derived fault stream so
                // one GPU's faults never shift another's.
                let device_plan = plan.derive(device as u64);
                let mut sim =
                    GpuSim::with_faults(config.gpu.device.clone(), cost.clone(), device_plan);
                let rec = simulate_order_recovering(&mut sim, a, &pg, &grouped, &config.gpu)?;
                recovery.merge(&rec.report);
                overrides.extend(rec.overrides);
                metrics.push(Metrics::collect(&sim, rec.sim_ns).with_chunks(rec.chunk_stats));
                timelines.push(sim.into_timeline());
                rec.sim_ns
            }
            None => {
                let mut sim = GpuSim::new(config.gpu.device.clone(), cost.clone());
                let t = simulate_order(&mut sim, &pg, &grouped, &config.gpu)?;
                metrics.push(Metrics::collect(&sim, t));
                timelines.push(sim.into_timeline());
                t
            }
        };
        gpu_ns.push(t);
        gpu_chunks.push(chunks.len());
    }
    let (cpu_ns, cpu_chunks) = if config.use_cpu {
        let chunks = &assignment[config.num_gpus];
        let t: SimTime = chunks
            .iter()
            .map(|info| {
                let p = pg.chunk(info.id);
                cost.cpu_chunk_duration(p.flops, p.nnz)
            })
            .sum();
        (t, chunks.len())
    } else {
        (0, 0)
    };

    let chunk_refs: Vec<(ChunkId, &CsrMatrix)> = order
        .iter()
        .map(|info| {
            let result = overrides.get(&info.id).unwrap_or(&pg.chunk(info.id).result);
            (info.id, result)
        })
        .collect();
    let c = assemble(&pg.plan, &chunk_refs);
    let sim_ns = gpu_ns.iter().copied().max().unwrap_or(0).max(cpu_ns);
    Ok(MultiGpuRun {
        c,
        sim_ns,
        gpu_ns,
        cpu_ns,
        gpu_chunks,
        cpu_chunks,
        flops: pg.total_flops(),
        timelines,
        metrics,
        plan: pg.plan,
        recovery,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpu_spgemm::reference;
    use sparse::gen::erdos_renyi;

    fn fixture() -> CsrMatrix {
        erdos_renyi(700, 700, 0.03, 11)
    }

    fn config(num_gpus: usize) -> MultiGpuConfig {
        MultiGpuConfig {
            gpu: OocConfig::with_device_memory(3 << 19).panels(4, 4),
            num_gpus,
            use_cpu: true,
        }
    }

    #[test]
    fn result_matches_reference() {
        let a = fixture();
        let run = multiply_multi_gpu(&a, &a, &config(2)).unwrap();
        let expect = reference::multiply(&a, &a).unwrap();
        assert!(run.c.approx_eq(&expect, 1e-9));
        assert_eq!(
            run.gpu_chunks.iter().sum::<usize>() + run.cpu_chunks,
            run.plan.num_chunks()
        );
        for t in &run.timelines {
            t.validate().unwrap();
        }
    }

    #[test]
    fn more_gpus_never_slower() {
        let a = fixture();
        let one = multiply_multi_gpu(&a, &a, &config(1)).unwrap();
        let two = multiply_multi_gpu(&a, &a, &config(2)).unwrap();
        let four = multiply_multi_gpu(&a, &a, &config(4)).unwrap();
        assert!(two.sim_ns <= one.sim_ns, "2 GPUs slower than 1");
        assert!(four.sim_ns <= two.sim_ns, "4 GPUs slower than 2");
        // And scaling actually buys something on a chunky workload.
        assert!(
            (four.sim_ns as f64) < 0.8 * one.sim_ns as f64,
            "no speedup from 4x devices: {} vs {}",
            four.sim_ns,
            one.sim_ns
        );
    }

    #[test]
    fn single_gpu_no_cpu_degenerates_to_plain_executor_shape() {
        let a = fixture();
        let mut cfg = config(1);
        cfg.use_cpu = false;
        let run = multiply_multi_gpu(&a, &a, &cfg).unwrap();
        assert_eq!(run.cpu_chunks, 0);
        assert_eq!(run.cpu_ns, 0);
        assert_eq!(run.gpu_chunks[0], run.plan.num_chunks());
        let expect = reference::multiply(&a, &a).unwrap();
        assert!(run.c.approx_eq(&expect, 1e-9));
    }

    #[test]
    fn zero_gpus_rejected() {
        let a = fixture();
        assert!(multiply_multi_gpu(&a, &a, &config(0)).is_err());
    }

    #[test]
    fn deterministic() {
        let a = fixture();
        let r1 = multiply_multi_gpu(&a, &a, &config(3)).unwrap();
        let r2 = multiply_multi_gpu(&a, &a, &config(3)).unwrap();
        assert_eq!(r1.sim_ns, r2.sim_ns);
        assert_eq!(r1.gpu_chunks, r2.gpu_chunks);
    }
}
