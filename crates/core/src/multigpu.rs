//! Multi-GPU extension — the paper's stated future direction ("our
//! ultimate goal of continuing to scale SpGEMM computations to
//! arbitrarily large matrices", Section III-A).
//!
//! The chunk decomposition of Algorithm 3 makes chunks independent, so
//! they schedule naturally across several devices. Each simulated GPU
//! keeps its own streams, copy engines and memory — the model assumes
//! one PCIe root per device (no shared-bus contention), the
//! best-case assumption a single-node multi-GPU box approximates.
//!
//! Assignment generalizes the hybrid executor's schedulers to many
//! claimants. Under the default [`SchedulerKind::WorkStealing`] the
//! flop-descending chunk list becomes a shared two-ended queue:
//! whenever a worker's estimated clock is the global minimum it takes
//! the next chunk — GPUs claim from the dense head, the (optional) CPU
//! worker steals from the sparse tail — and the run ends when the
//! queue drains. [`SchedulerKind::Static`] keeps the earlier one-shot
//! longest-processing-time (LPT) list assignment: each chunk in flop
//! order goes to the worker with the smallest committed load.

use crate::assemble::assemble;
use crate::chunks::{ChunkGrid, ChunkId, ChunkInfo};
use crate::config::{OocConfig, SchedulerKind};
use crate::executor::{
    estimator_stats, prepare_grid, simulate_order, simulate_order_recovering, PreparedGrid,
};
use crate::faults::{self, HostFaultKind, HostFaultState};
use crate::metrics::{CpuKernelStats, Metrics, SchedulerStats};
use crate::plan::PanelPlan;
use crate::recovery::{backoff_ns, RecoveryReport};
use crate::Result;
use gpu_sim::{CostModel, GpuSim, KernelKind, SimTime, Timeline};
use gpu_spgemm::PreparedChunk;
use sparse::CsrMatrix;
use std::collections::HashMap;

/// Configuration of the multi-device executor.
#[derive(Clone, Debug)]
pub struct MultiGpuConfig {
    /// Per-device GPU configuration (device memory, cost model, async
    /// pipeline settings).
    pub gpu: OocConfig,
    /// Number of simulated GPUs (≥ 1).
    pub num_gpus: usize,
    /// Also keep a CPU worker in the pool.
    pub use_cpu: bool,
    /// Chunk distribution strategy (see module docs).
    pub scheduler: SchedulerKind,
}

impl MultiGpuConfig {
    /// `num_gpus` devices with the paper-default per-device config.
    pub fn new(num_gpus: usize) -> Self {
        MultiGpuConfig {
            gpu: OocConfig::paper_default(),
            num_gpus,
            use_cpu: true,
            scheduler: SchedulerKind::default(),
        }
    }

    /// Selects the chunk distribution strategy.
    pub fn scheduler(mut self, kind: SchedulerKind) -> Self {
        self.scheduler = kind;
        self
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        self.gpu.validate()?;
        if self.num_gpus == 0 {
            return Err(crate::OocError::Config("need at least one GPU".into()));
        }
        Ok(())
    }
}

/// Outcome of a multi-device run.
#[derive(Debug)]
pub struct MultiGpuRun {
    /// The full product.
    pub c: CsrMatrix,
    /// Completion time: the slowest worker.
    pub sim_ns: SimTime,
    /// Per-GPU completion times.
    pub gpu_ns: Vec<SimTime>,
    /// CPU worker completion time (0 when unused).
    pub cpu_ns: SimTime,
    /// Chunks per GPU.
    pub gpu_chunks: Vec<usize>,
    /// Chunks on the CPU worker.
    pub cpu_chunks: usize,
    /// Total flops.
    pub flops: u64,
    /// Per-GPU timelines.
    pub timelines: Vec<Timeline>,
    /// Per-GPU structured metrics, aligned with [`Self::timelines`].
    pub metrics: Vec<Metrics>,
    /// The panel plan used.
    pub plan: PanelPlan,
    /// Recovery activity merged across all devices (all-zero for a
    /// fault-free run).
    pub recovery: RecoveryReport,
    /// How the scheduler distributed the chunks. `gpu_idle_ns` sums
    /// the idle time of *all* GPU workers against the makespan.
    pub scheduler: SchedulerStats,
}

impl MultiGpuRun {
    /// GFLOPS over the makespan.
    pub fn gflops(&self) -> f64 {
        if self.sim_ns == 0 {
            return 0.0;
        }
        self.flops as f64 / self.sim_ns as f64
    }
}

/// Estimated steady-state pipeline occupancy of one chunk on a GPU:
/// the async pipeline overlaps the copy engines and the compute
/// engine, so a chunk's marginal cost is its *slowest* engine — the
/// H2D input transfer, the D2H result transfer, or the three kernels.
/// (The earlier LPT estimate costed the D2H output copy alone, which
/// starves compute-bound devices of attention.) Speculatively planned
/// chunks are priced the way the pipeline runs them: the estimated
/// output reservation replaces the exact output and the per-row nnz
/// round-trip disappears.
fn gpu_chunk_estimate(cost: &CostModel, p: &PreparedChunk, pinned: bool) -> SimTime {
    let h2d = cost.copy_duration(p.b_bytes, false, pinned);
    let row_nnz = if p.spec.is_some() { 0 } else { p.row_nnz_bytes };
    let d2h = cost.copy_duration(
        p.planned_out_bytes() + p.row_info_bytes + row_nnz,
        true,
        pinned,
    );
    let kernels = cost.kernel_duration(KernelKind::RowAnalysis { ops: p.a_nnz })
        + cost.kernel_duration(KernelKind::Symbolic {
            flops: p.flops,
            compression_ratio: p.compression_ratio,
        })
        + cost.kernel_duration(KernelKind::Numeric {
            flops: p.flops,
            compression_ratio: p.compression_ratio,
        });
    h2d.max(d2h).max(kernels)
}

/// Distributes the flop-descending `order` over `workers` slots
/// (GPUs first, CPU worker last when present). Returns the per-worker
/// chunk lists plus (gpu claims, cpu steals).
fn distribute(
    config: &MultiGpuConfig,
    pg: &PreparedGrid,
    order: &[ChunkInfo],
) -> Result<(Vec<Vec<ChunkInfo>>, u64, u64)> {
    let cost = &config.gpu.cost;
    let workers = config.num_gpus + usize::from(config.use_cpu);
    if workers == 0 {
        return Err(crate::OocError::Config(
            "cannot distribute chunks over an empty worker set".into(),
        ));
    }
    let mut assignment: Vec<Vec<ChunkInfo>> = vec![Vec::new(); workers];
    let mut gpu_claims = 0u64;
    let mut cpu_steals = 0u64;
    match config.scheduler {
        SchedulerKind::Static => {
            // One-shot LPT list scheduling over estimated chunk costs.
            let mut loads = vec![0u64; workers];
            for info in order {
                let p = pg.chunk(info.id);
                let est = |w: usize| {
                    if w < config.num_gpus {
                        gpu_chunk_estimate(cost, p, config.gpu.pinned)
                    } else {
                        config.gpu.cpu_chunk_ns(p.flops, p.nnz)
                    }
                };
                let Some(best_w) = (0..workers).min_by_key(|&w| (loads[w] + est(w), w)) else {
                    return Err(crate::OocError::Config(
                        "cannot distribute chunks over an empty worker set".into(),
                    ));
                };
                loads[best_w] += est(best_w);
                assignment[best_w].push(*info);
                if best_w < config.num_gpus {
                    gpu_claims += 1;
                } else {
                    cpu_steals += 1;
                }
            }
        }
        SchedulerKind::WorkStealing => {
            // Two-ended claim queue: the globally least-loaded worker
            // acts next (ties to the lowest index, so GPUs lead); GPUs
            // claim the dense head, the CPU steals the sparse tail.
            let mut clocks = vec![0u64; workers];
            let mut head = 0usize;
            let mut tail = order.len();
            while head < tail {
                let Some(w) = (0..workers).min_by_key(|&w| (clocks[w], w)) else {
                    return Err(crate::OocError::Config(
                        "cannot distribute chunks over an empty worker set".into(),
                    ));
                };
                let info = if w < config.num_gpus {
                    let info = order[head];
                    head += 1;
                    gpu_claims += 1;
                    clocks[w] += gpu_chunk_estimate(cost, pg.chunk(info.id), config.gpu.pinned);
                    info
                } else {
                    tail -= 1;
                    let info = order[tail];
                    cpu_steals += 1;
                    let p = pg.chunk(info.id);
                    clocks[w] += config.gpu.cpu_chunk_ns(p.flops, p.nnz);
                    info
                };
                assignment[w].push(info);
            }
        }
    }
    Ok((assignment, gpu_claims, cpu_steals))
}

/// Computes `C = a · b` across `num_gpus` simulated devices (plus an
/// optional CPU worker).
pub fn multiply_multi_gpu(
    a: &CsrMatrix,
    b: &CsrMatrix,
    config: &MultiGpuConfig,
) -> Result<MultiGpuRun> {
    config.validate()?;
    // The per-device estimator is honored: a non-exact `--estimator`
    // used to be silently forced back to exact here, which dropped the
    // flag without a word. Distribution prices speculative chunks the
    // same way the pipeline runs them (see `gpu_chunk_estimate`), while
    // the realized flop split still comes from actual per-chunk flops.
    let pg = prepare_grid(a, b, &config.gpu)?;
    let order = pg.grid.sorted_desc();
    let cost = &config.gpu.cost;
    let (assignment, gpu_claims, cpu_steals) = distribute(config, &pg, &order)?;

    // Simulate each GPU on its own device; cost the CPU worker.
    let mut gpu_ns = Vec::with_capacity(config.num_gpus);
    let mut timelines = Vec::with_capacity(config.num_gpus);
    let mut metrics = Vec::with_capacity(config.num_gpus);
    let mut gpu_chunks = Vec::with_capacity(config.num_gpus);
    let mut recovery = RecoveryReport::default();
    let mut overrides: HashMap<ChunkId, CsrMatrix> = HashMap::new();
    let recovering = config.gpu.fault_plan.is_some()
        || config.gpu.host_faults.is_some()
        || config.gpu.budget.is_some()
        || pg.est_model.is_some();
    for (device, chunks) in assignment.iter().take(config.num_gpus).enumerate() {
        let grouped = ChunkGrid::grouped_desc(chunks);
        let t = if recovering {
            // Each device draws from its own derived fault streams
            // (device and host) so one GPU's faults never shift
            // another's.
            let mut dev_cfg = config.gpu.clone();
            if let Some(hp) = &config.gpu.host_faults {
                dev_cfg.host_faults = Some(hp.derive(faults::streams::MULTI_GPU + device as u64));
            }
            let mut sim = match &config.gpu.fault_plan {
                Some(plan) => GpuSim::with_faults(
                    config.gpu.device.clone(),
                    cost.clone(),
                    plan.derive(device as u64),
                ),
                None => GpuSim::new(config.gpu.device.clone(), cost.clone()),
            };
            let rec = simulate_order_recovering(&mut sim, a, &pg, &grouped, &dev_cfg)?;
            recovery.merge(&rec.report);
            overrides.extend(rec.overrides);
            metrics.push(
                Metrics::collect(&sim, rec.sim_ns)
                    .with_chunks(rec.chunk_stats)
                    .with_degradations(rec.degradations),
            );
            timelines.push(sim.into_timeline());
            rec.sim_ns
        } else {
            let mut sim = GpuSim::new(config.gpu.device.clone(), cost.clone());
            let t = simulate_order(&mut sim, &pg, &grouped, &config.gpu)?;
            metrics.push(Metrics::collect(&sim, t));
            timelines.push(sim.into_timeline());
            t
        };
        gpu_ns.push(t);
        gpu_chunks.push(chunks.len());
    }
    // Estimator accuracy is a property of the shared grid, not of one
    // device; report it once, on device 0, so `--json` consumers see it.
    if let (Some(model), Some(m0)) = (&pg.est_model, metrics.first_mut()) {
        *m0 =
            std::mem::take(m0).with_estimator(estimator_stats(&config.gpu, &pg, model, &recovery));
    }
    let (cpu_ns, cpu_chunks) = if config.use_cpu {
        let chunks = &assignment[config.num_gpus];
        // The CPU worker is a host fault domain of its own: transient
        // CPU-kernel faults cost a recompute plus backoff, charged to
        // the worker's clock.
        let mut host = config
            .gpu
            .host_faults
            .as_ref()
            .map(|p| HostFaultState::new(p.derive(faults::streams::CPU_WORKER)));
        let mut kernel_picks = CpuKernelStats::new(config.gpu.cpu_kernel.name());
        let mut t: SimTime = 0;
        for info in chunks {
            let p = pg.chunk(info.id);
            kernel_picks.record(config.gpu.cpu_kernel_class(p.flops, p.nnz));
            let chunk_ns = config.gpu.cpu_chunk_ns(p.flops, p.nnz);
            if let Some(state) = host.as_mut() {
                let mut attempt = 0u32;
                while state.roll(HostFaultKind::CpuKernel) {
                    attempt += 1;
                    let backoff = backoff_ns(cost, attempt);
                    t += chunk_ns + backoff;
                    recovery.cpu_kernel_faults += 1;
                    recovery.retries += 1;
                    recovery.backoff_ns += backoff;
                    recovery.time_lost_ns += chunk_ns + backoff;
                }
            }
            t += chunk_ns;
        }
        // The CPU worker is shared across the node, like the estimator:
        // report its kernel dispatch once, on device 0.
        if let (true, Some(m0)) = (kernel_picks.total() > 0, metrics.first_mut()) {
            *m0 = std::mem::take(m0).with_cpu_kernels(kernel_picks);
        }
        (t, chunks.len())
    } else {
        (0, 0)
    };

    let chunk_refs: Vec<(ChunkId, &CsrMatrix)> = order
        .iter()
        .map(|info| {
            let result = overrides.get(&info.id).unwrap_or(&pg.chunk(info.id).result);
            (info.id, result)
        })
        .collect();
    let c = assemble(&pg.plan, &chunk_refs);
    let sim_ns = gpu_ns.iter().copied().max().unwrap_or(0).max(cpu_ns);
    let total_flops = pg.total_flops();
    let gpu_flops: u64 = assignment
        .iter()
        .take(config.num_gpus)
        .flatten()
        .map(|info| info.flops)
        .sum();
    let scheduler = SchedulerStats {
        kind: config.scheduler,
        gpu_claims,
        cpu_steals,
        gpu_idle_ns: gpu_ns.iter().map(|&t| sim_ns - t).sum(),
        cpu_idle_ns: sim_ns - cpu_ns,
        realized_gpu_ratio: if total_flops == 0 {
            0.0
        } else {
            gpu_flops as f64 / total_flops as f64
        },
    };
    Ok(MultiGpuRun {
        c,
        sim_ns,
        gpu_ns,
        cpu_ns,
        gpu_chunks,
        cpu_chunks,
        flops: total_flops,
        timelines,
        metrics,
        plan: pg.plan,
        recovery,
        scheduler,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpu_spgemm::reference;
    use sparse::gen::erdos_renyi;

    fn fixture() -> CsrMatrix {
        erdos_renyi(700, 700, 0.03, 11)
    }

    fn config(num_gpus: usize) -> MultiGpuConfig {
        MultiGpuConfig {
            gpu: OocConfig::with_device_memory(3 << 19).panels(4, 4),
            num_gpus,
            use_cpu: true,
            scheduler: SchedulerKind::WorkStealing,
        }
    }

    #[test]
    fn result_matches_reference() {
        let a = fixture();
        let run = multiply_multi_gpu(&a, &a, &config(2)).unwrap();
        let expect = reference::multiply(&a, &a).unwrap();
        assert!(run.c.approx_eq(&expect, 1e-9));
        assert_eq!(
            run.gpu_chunks.iter().sum::<usize>() + run.cpu_chunks,
            run.plan.num_chunks()
        );
        for t in &run.timelines {
            t.validate().unwrap();
        }
    }

    #[test]
    fn more_gpus_never_slower() {
        let a = fixture();
        let one = multiply_multi_gpu(&a, &a, &config(1)).unwrap();
        let two = multiply_multi_gpu(&a, &a, &config(2)).unwrap();
        let four = multiply_multi_gpu(&a, &a, &config(4)).unwrap();
        assert!(two.sim_ns <= one.sim_ns, "2 GPUs slower than 1");
        assert!(four.sim_ns <= two.sim_ns, "4 GPUs slower than 2");
        // And scaling actually buys something on a chunky workload.
        assert!(
            (four.sim_ns as f64) < 0.8 * one.sim_ns as f64,
            "no speedup from 4x devices: {} vs {}",
            four.sim_ns,
            one.sim_ns
        );
    }

    #[test]
    fn single_gpu_no_cpu_degenerates_to_plain_executor_shape() {
        let a = fixture();
        let mut cfg = config(1);
        cfg.use_cpu = false;
        let run = multiply_multi_gpu(&a, &a, &cfg).unwrap();
        assert_eq!(run.cpu_chunks, 0);
        assert_eq!(run.cpu_ns, 0);
        assert_eq!(run.gpu_chunks[0], run.plan.num_chunks());
        let expect = reference::multiply(&a, &a).unwrap();
        assert!(run.c.approx_eq(&expect, 1e-9));
    }

    #[test]
    fn zero_gpus_rejected() {
        let a = fixture();
        assert!(multiply_multi_gpu(&a, &a, &config(0)).is_err());
    }

    #[test]
    fn empty_worker_set_is_a_config_error_not_a_panic() {
        let a = fixture();
        let mut cfg = config(0);
        cfg.use_cpu = false;
        // Bypass validate(): exercise distribute()'s own guard.
        let pg = prepare_grid(&a, &a, &cfg.gpu).unwrap();
        let order = pg.grid.sorted_desc();
        match distribute(&cfg, &pg, &order) {
            Err(crate::OocError::Config(msg)) => {
                assert!(msg.contains("empty worker set"), "{msg}")
            }
            other => panic!("expected Config error, got {other:?}"),
        }
    }

    #[test]
    fn host_faults_keep_c_bit_identical_and_cost_time() {
        let a = fixture();
        let mut cfg = config(2);
        cfg.gpu.host_faults = Some(crate::faults::HostFaultPlan::seeded(11).cpu_kernel_rate(0.5));
        let faulted = multiply_multi_gpu(&a, &a, &cfg).unwrap();
        let clean = multiply_multi_gpu(&a, &a, &config(2)).unwrap();
        assert_eq!(faulted.c, clean.c, "host faults must not perturb C");
        assert!(
            faulted.recovery.cpu_kernel_faults > 0,
            "rate 0.5 on the CPU worker should inject"
        );
        assert!(
            faulted.cpu_ns > clean.cpu_ns,
            "faults must cost simulated time"
        );
        // Same plan, same run: byte-reproducible.
        let again = multiply_multi_gpu(&a, &a, &cfg).unwrap();
        assert_eq!(again.cpu_ns, faulted.cpu_ns);
        assert_eq!(again.recovery, faulted.recovery);
    }

    #[test]
    fn deterministic() {
        let a = fixture();
        let r1 = multiply_multi_gpu(&a, &a, &config(3)).unwrap();
        let r2 = multiply_multi_gpu(&a, &a, &config(3)).unwrap();
        assert_eq!(r1.sim_ns, r2.sim_ns);
        assert_eq!(r1.gpu_chunks, r2.gpu_chunks);
        assert_eq!(r1.scheduler, r2.scheduler);
    }

    #[test]
    fn static_lpt_matches_reference_too() {
        let a = fixture();
        let cfg = config(2).scheduler(SchedulerKind::Static);
        let run = multiply_multi_gpu(&a, &a, &cfg).unwrap();
        let expect = reference::multiply(&a, &a).unwrap();
        assert!(run.c.approx_eq(&expect, 1e-9));
        assert_eq!(run.scheduler.kind, SchedulerKind::Static);
        assert_eq!(
            run.scheduler.gpu_claims + run.scheduler.cpu_steals,
            run.plan.num_chunks() as u64
        );
    }

    #[test]
    fn scheduler_stats_account_every_chunk_and_worker() {
        let a = fixture();
        let run = multiply_multi_gpu(&a, &a, &config(3)).unwrap();
        assert_eq!(
            run.scheduler.gpu_claims as usize,
            run.gpu_chunks.iter().sum::<usize>()
        );
        assert_eq!(run.scheduler.cpu_steals as usize, run.cpu_chunks);
        let idle: SimTime = run.gpu_ns.iter().map(|&t| run.sim_ns - t).sum();
        assert_eq!(run.scheduler.gpu_idle_ns, idle);
        assert_eq!(run.scheduler.cpu_idle_ns, run.sim_ns - run.cpu_ns);
        assert!((0.0..=1.0).contains(&run.scheduler.realized_gpu_ratio));
    }
}
