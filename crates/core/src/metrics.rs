//! Structured per-run metrics: the machine-readable observability
//! layer (DESIGN.md §9).
//!
//! A [`Metrics`] value combines three sources:
//!
//! * the simulator timeline aggregation ([`TimelineMetrics`]) — engine
//!   busy/idle, transfer bytes and bandwidth, per-kernel-phase compute
//!   time, overlap efficiency;
//! * device-memory accounting captured from the simulator before it is
//!   consumed (allocation and bump-pool high-water marks);
//! * host-side counters from the recovering executors — per-chunk
//!   attempt counts, re-splits, and demotion causes ([`ChunkMetrics`]).
//!
//! The figure-facing numbers are **bit-identical** to the ad-hoc
//! derivations they replace: `timeline.transfer_fraction` is computed
//! by [`gpu_sim::Timeline::transfer_fraction`] itself (Fig 4), and
//! `completion_ns` is the exact `sim_ns` the run returns (Fig 8).

use crate::chunks::ChunkId;
use crate::config::SchedulerKind;
use gpu_sim::{GpuSim, SimTime, TimelineMetrics};
use serde::{Deserialize, Serialize};

/// Work-distribution accounting of the hybrid (and multi-GPU)
/// scheduler: how many chunks each side ended up with, how long each
/// worker idled waiting for the slower side, and the flop split the
/// run actually realized (vs the configured ratio hint).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SchedulerStats {
    /// Which scheduler produced the assignment.
    pub kind: SchedulerKind,
    /// Chunks the GPU side claimed from the dense head of the queue
    /// (under the static scheduler: the size of the up-front GPU half).
    pub gpu_claims: u64,
    /// Chunks the CPU stole from the sparse tail of the queue (always
    /// the full CPU half; 0 when everything ran on the GPU).
    pub cpu_steals: u64,
    /// GPU worker idle time at the end of the run, ns: `sim_ns -
    /// gpu_ns` (summed over devices in a multi-GPU run).
    pub gpu_idle_ns: SimTime,
    /// CPU worker idle time at the end of the run, ns: `sim_ns -
    /// cpu_ns`.
    pub cpu_idle_ns: SimTime,
    /// Fraction of total flops the GPU side actually executed.
    pub realized_gpu_ratio: f64,
}

/// CPU-kernel dispatch accounting: which SpGEMM kernel the CPU side
/// was configured with, and how many chunks each per-row-group class
/// priced as under the adaptive classifier (fixed kernels put every
/// chunk in their own bucket). Populated whenever a run priced CPU
/// work; `None` for pure-GPU runs.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CpuKernelStats {
    /// Configured kernel name (`hash`, `dense`, `merge`, `adaptive`).
    pub kernel: String,
    /// Chunks priced with the hash-accumulator class.
    pub hash_picks: u64,
    /// Chunks priced with the dense-accumulator class.
    pub dense_picks: u64,
    /// Chunks priced with the merge-chain class.
    pub merge_picks: u64,
}

impl CpuKernelStats {
    /// A zeroed counter set for the named kernel.
    pub fn new(kernel: &str) -> Self {
        CpuKernelStats {
            kernel: kernel.to_string(),
            ..CpuKernelStats::default()
        }
    }

    /// Records one chunk priced under `class`.
    pub fn record(&mut self, class: gpu_sim::CpuKernelClass) {
        match class {
            gpu_sim::CpuKernelClass::Hash => self.hash_picks += 1,
            gpu_sim::CpuKernelClass::Dense => self.dense_picks += 1,
            gpu_sim::CpuKernelClass::Merge => self.merge_picks += 1,
        }
    }

    /// Total chunks priced on the CPU side.
    pub fn total(&self) -> u64 {
        self.hash_picks + self.dense_picks + self.merge_picks
    }
}

/// Why a chunk left the GPU for the CPU.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum DemotionCause {
    /// The chunk's working set did not fit the device pool and could
    /// not be split further.
    DeviceMemory,
    /// Transient faults exhausted the retry budget.
    Faults,
    /// The run budget's final degradation rung moved the chunk to the
    /// CPU — the only executor whose time is exactly predictable.
    Deadline,
}

/// Why a run degraded below its configured quality of service.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum DegradationCause {
    /// The unified-memory working set exceeded device capacity and the
    /// run paged against the migration engine instead of running
    /// resident.
    UnifiedThrash,
    /// Budget rung 1: pending speculative chunks were re-sized to
    /// their exact output (no headroom, no overflow risk).
    HeadroomShrink,
    /// Budget rung 2: speculation stripped from the remaining chunks —
    /// full exact symbolic schedule.
    ForcedExact,
    /// Budget rung 3: remaining chunks demoted to the CPU at calibrated
    /// cost.
    DeadlineDemotion,
    /// Sustained pressure (capacity shrink or repeated estimate
    /// overflows) re-planned the remaining grid in one batch.
    Replan,
}

impl DegradationCause {
    /// Stable JSON/CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            DegradationCause::UnifiedThrash => "unified_thrash",
            DegradationCause::HeadroomShrink => "headroom_shrink",
            DegradationCause::ForcedExact => "forced_exact",
            DegradationCause::DeadlineDemotion => "deadline_demotion",
            DegradationCause::Replan => "replan",
        }
    }
}

/// One supervised degradation: what happened, when (simulated time),
/// and what it cost (extra simulated time attributable to the degraded
/// mode; 0 when the cost cannot be isolated).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DegradationEvent {
    /// Why the run degraded.
    pub cause: DegradationCause,
    /// Simulated time at which the degradation took effect, ns.
    pub at_ns: SimTime,
    /// Extra simulated time attributed to the degradation, ns.
    pub cost_ns: SimTime,
}

/// Host-side recovery counters for one planned chunk (and all the
/// sub-chunks it was re-split into).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChunkMetrics {
    /// Row-panel index of the planned chunk.
    pub row: usize,
    /// Column-panel index of the planned chunk.
    pub col: usize,
    /// Device attempts made on this chunk or its sub-chunks.
    pub attempts: u64,
    /// Times a piece of this chunk was re-split after an OOM failure.
    pub resplits: u64,
    /// Pieces of this chunk demoted to the CPU.
    pub demotions: u64,
    /// Cause of the first demotion, if any piece was demoted.
    pub demotion_cause: Option<DemotionCause>,
}

impl ChunkMetrics {
    /// A zeroed counter row for the chunk.
    pub fn new(id: ChunkId) -> Self {
        ChunkMetrics {
            row: id.row,
            col: id.col,
            attempts: 0,
            resplits: 0,
            demotions: 0,
            demotion_cause: None,
        }
    }
}

/// Accuracy and recovery accounting of the nnz(C) estimator behind a
/// speculative run: how close the estimate landed, how many chunks
/// fit their estimated allocation on the first try, how many had to be
/// grown and retried, and the headroom the run actually applied
/// (chained runs adapt it per iteration, so it can differ from the
/// configured `--headroom`).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EstimatorStats {
    /// Estimator kind name (`row-sample`, `hash-sketch`, `upper-bound`).
    pub kind: String,
    /// Rows the model sampled while calibrating.
    pub sampled_rows: u64,
    /// Estimated total output nonzeros, summed over chunk estimates.
    pub est_nnz: u64,
    /// Actual total output nonzeros.
    pub actual_nnz: u64,
    /// Chunks whose actual output fit the estimated allocation.
    pub chunk_hits: u64,
    /// Chunks whose actual output outgrew the estimated allocation.
    pub chunk_misses: u64,
    /// Rows whose individual estimate undershot their actual nnz (the
    /// per-row view of estimator error; a chunk absorbs row misses as
    /// long as its total estimate holds).
    pub overflow_rows: u64,
    /// Grow-and-retry passes the executor ran to recover overflows.
    pub retries: u64,
    /// Safety margin actually multiplied into every row estimate for
    /// this run. Equals the configured headroom for one-shot runs;
    /// chained runs (`power`, `triple_product`) shrink it per
    /// iteration from the previous iteration's observed hit-rate.
    pub headroom: f64,
}

/// Per-tenant aggregates of a service-frontend trace: how much work a
/// tenant submitted, what the admission controller and quota did with
/// it, and what the completed requests cost.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TenantStats {
    /// Tenant identifier.
    pub tenant: String,
    /// Requests the tenant submitted.
    pub submitted: u64,
    /// Requests that completed successfully.
    pub completed: u64,
    /// Requests shed by the admission controller (queue full or
    /// device-pool pressure).
    pub shed: u64,
    /// Requests that had to wait for the tenant's flop token bucket to
    /// refill before dispatch. Batch members admitted by the operand
    /// batcher count here too, when the bucket state at their arrival
    /// instant could not have covered their share and only the refill
    /// accrued while they queued let them join.
    pub quota_queued: u64,
    /// Requests that terminated as deadline misses: either dispatch
    /// could no longer begin before `arrival + sim_deadline_ns`, or the
    /// executor's own run budget aborted with a clean
    /// `DeadlineExceeded`.
    pub deadline_missed: u64,
    /// Requests that reused another request's resident prepared grid
    /// (operand-sharing batcher hits).
    pub batch_hits: u64,
    /// Total flops of the tenant's completed requests.
    pub flops: u64,
    /// Summed simulated execution time of the tenant's completed
    /// requests, ns.
    pub busy_ns: u64,
    /// Summed simulated time the tenant's requests waited between
    /// admission and dispatch, ns.
    pub queued_ns: u64,
}

/// Residency accounting of the service frontend's bounded caches: how
/// much the resident grid cache and the interned-matrix store hold
/// right now, the high-water marks, and how often the eviction policy
/// and the deadline supervisor fired. Only the service frontend
/// populates this (`None` for one-shot executor runs).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ServiceStats {
    /// Configured grid-cache byte cap; `None` means unbounded.
    pub grid_cache_bytes: Option<u64>,
    /// Bytes currently held by resident prepared grids.
    pub resident_grid_bytes: u64,
    /// High-water mark of `resident_grid_bytes` over the service's
    /// lifetime. Never exceeds the configured cap.
    pub resident_grid_high_water_bytes: u64,
    /// Prepared grids currently resident.
    pub resident_grids: u64,
    /// Grids inserted into the cache (first preparations and rebuilds).
    pub grid_inserts: u64,
    /// Grids evicted — by LRU pressure on insert, or because an operand
    /// they reference was released.
    pub grid_evictions: u64,
    /// Cache misses for a key that had been resident before: the cost
    /// of the eviction policy, paid as a re-preparation.
    pub grid_rebuilds: u64,
    /// Interned matrices currently resident (live slots).
    pub matrices_resident: u64,
    /// Bytes held by resident interned matrices.
    pub matrix_bytes: u64,
    /// Interned matrices fully released and freed.
    pub matrices_released: u64,
    /// Requests that terminated as deadline misses, summed over
    /// tenants.
    pub deadline_missed: u64,
}

/// Structured metrics for one executor run.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    /// The run's completion time — the exact `sim_ns` the executor
    /// returns (Fig 8 reads speedups from this field).
    pub completion_ns: SimTime,
    /// Timeline aggregation (engines, bytes, overlap, phases).
    pub timeline: TimelineMetrics,
    /// Device-memory allocation high-water mark, bytes.
    pub device_high_water_bytes: u64,
    /// Bump-pool usage high-water mark, bytes (0 when the executor
    /// never carved a pool, e.g. pure-CPU demotion runs).
    pub pool_high_water_bytes: u64,
    /// Per-chunk recovery counters; empty for exact fault-free runs.
    /// Speculative runs always route through the recovering pass and
    /// report at least one attempt per chunk.
    pub chunks: Vec<ChunkMetrics>,
    /// Scheduler accounting; `None` for single-device runs that have
    /// no CPU/GPU work distribution to report.
    pub scheduler: Option<SchedulerStats>,
    /// CPU-kernel dispatch accounting; `None` when no CPU work was
    /// priced (pure-GPU runs).
    pub cpu_kernels: Option<CpuKernelStats>,
    /// Estimator accuracy accounting; `None` for exact (non-speculative)
    /// runs.
    pub estimator: Option<EstimatorStats>,
    /// Supervised degradations, in the order they took effect; empty
    /// for runs that never degraded.
    pub degradations: Vec<DegradationEvent>,
    /// Per-tenant aggregates; only populated by the service frontend
    /// (empty for one-shot executor runs).
    pub tenants: Vec<TenantStats>,
    /// Service residency accounting; only populated by the service
    /// frontend (`None` for one-shot executor runs).
    pub service: Option<ServiceStats>,
}

impl Metrics {
    /// Captures every simulator-side metric. Must be called before the
    /// simulator is consumed into its timeline.
    pub fn collect(sim: &GpuSim, completion_ns: SimTime) -> Self {
        Metrics {
            completion_ns,
            timeline: sim.timeline().metrics(),
            device_high_water_bytes: sim.memory().high_water(),
            pool_high_water_bytes: sim.pool_high_water(),
            chunks: Vec::new(),
            scheduler: None,
            cpu_kernels: None,
            estimator: None,
            degradations: Vec::new(),
            tenants: Vec::new(),
            service: None,
        }
    }

    /// Attaches host-side per-chunk recovery counters.
    pub fn with_chunks(mut self, chunks: Vec<ChunkMetrics>) -> Self {
        self.chunks = chunks;
        self
    }

    /// Attaches scheduler work-distribution accounting.
    pub fn with_scheduler(mut self, stats: SchedulerStats) -> Self {
        self.scheduler = Some(stats);
        self
    }

    /// Attaches CPU-kernel dispatch accounting.
    pub fn with_cpu_kernels(mut self, stats: CpuKernelStats) -> Self {
        self.cpu_kernels = Some(stats);
        self
    }

    /// Attaches estimator accuracy accounting.
    pub fn with_estimator(mut self, stats: EstimatorStats) -> Self {
        self.estimator = Some(stats);
        self
    }

    /// Attaches supervised degradation events.
    pub fn with_degradations(mut self, events: Vec<DegradationEvent>) -> Self {
        self.degradations = events;
        self
    }

    /// Attaches per-tenant service aggregates.
    pub fn with_tenants(mut self, tenants: Vec<TenantStats>) -> Self {
        self.tenants = tenants;
        self
    }

    /// Attaches service residency accounting.
    pub fn with_service(mut self, stats: ServiceStats) -> Self {
        self.service = Some(stats);
        self
    }

    /// Serializes to pretty-printed JSON.
    ///
    /// Hand-rolled (field names pinned by the schema tests) so the
    /// `--metrics-out` CLI path has no serde-runtime dependency; the
    /// derived `Serialize` impl emits the same shape for embedders.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(2048);
        s.push_str("{\n");
        push_u64(&mut s, 1, "completion_ns", self.completion_ns, true);
        s.push_str("  \"timeline\": {\n");
        let t = &self.timeline;
        push_u64(&mut s, 2, "makespan_ns", t.makespan_ns, true);
        for (name, e) in [("kernel", t.kernel), ("h2d", t.h2d), ("d2h", t.d2h)] {
            s.push_str(&format!(
                "    \"{name}\": {{ \"busy_ns\": {}, \"idle_ns\": {}, \"ops\": {} }},\n",
                e.busy_ns, e.idle_ns, e.ops
            ));
        }
        push_u64(&mut s, 2, "h2d_bytes", t.h2d_bytes, true);
        push_u64(&mut s, 2, "d2h_bytes", t.d2h_bytes, true);
        push_f64(&mut s, 2, "h2d_bandwidth", t.h2d_bandwidth, true);
        push_f64(&mut s, 2, "d2h_bandwidth", t.d2h_bandwidth, true);
        s.push_str("    \"kernel_classes\": [");
        for (i, k) in t.kernel_classes.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n      {{ \"class\": \"{}\", \"busy_ns\": {}, \"launches\": {}, \"payload\": {} }}",
                k.class.name(),
                k.busy_ns,
                k.launches,
                k.payload
            ));
        }
        if !t.kernel_classes.is_empty() {
            s.push_str("\n    ");
        }
        s.push_str("],\n");
        push_u64(&mut s, 2, "host_compute_ns", t.host_compute_ns, true);
        push_f64(&mut s, 2, "transfer_fraction", t.transfer_fraction, true);
        push_u64(&mut s, 2, "hidden_transfer_ns", t.hidden_transfer_ns, true);
        push_u64(&mut s, 2, "total_transfer_ns", t.total_transfer_ns, true);
        push_f64(&mut s, 2, "overlap_efficiency", t.overlap_efficiency, true);
        s.push_str("    \"streams\": [");
        for (i, m) in t.streams.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n      {{ \"stream\": {}, \"ops\": {}, \"busy_ns\": {}, \"span_ns\": {} }}",
                m.stream, m.ops, m.busy_ns, m.span_ns
            ));
        }
        if !t.streams.is_empty() {
            s.push_str("\n    ");
        }
        s.push_str("]\n");
        s.push_str("  },\n");
        push_u64(
            &mut s,
            1,
            "device_high_water_bytes",
            self.device_high_water_bytes,
            true,
        );
        push_u64(
            &mut s,
            1,
            "pool_high_water_bytes",
            self.pool_high_water_bytes,
            true,
        );
        match &self.scheduler {
            Some(st) => {
                s.push_str(&format!(
                    "  \"scheduler\": {{ \"kind\": \"{}\", \"gpu_claims\": {}, \
                     \"cpu_steals\": {}, \"gpu_idle_ns\": {}, \"cpu_idle_ns\": {}, ",
                    st.kind.name(),
                    st.gpu_claims,
                    st.cpu_steals,
                    st.gpu_idle_ns,
                    st.cpu_idle_ns,
                ));
                if st.realized_gpu_ratio.is_finite() {
                    s.push_str(&format!(
                        "\"realized_gpu_ratio\": {} }},\n",
                        st.realized_gpu_ratio
                    ));
                } else {
                    s.push_str("\"realized_gpu_ratio\": null },\n");
                }
            }
            None => s.push_str("  \"scheduler\": null,\n"),
        }
        match &self.cpu_kernels {
            Some(k) => {
                s.push_str(&format!(
                    "  \"cpu_kernels\": {{ \"kernel\": \"{}\", \"hash_picks\": {}, \
                     \"dense_picks\": {}, \"merge_picks\": {} }},\n",
                    k.kernel, k.hash_picks, k.dense_picks, k.merge_picks,
                ));
            }
            None => s.push_str("  \"cpu_kernels\": null,\n"),
        }
        match &self.estimator {
            Some(e) => {
                s.push_str(&format!(
                    "  \"estimator\": {{ \"kind\": \"{}\", \"sampled_rows\": {}, \
                     \"est_nnz\": {}, \"actual_nnz\": {}, \"chunk_hits\": {}, \
                     \"chunk_misses\": {}, \"overflow_rows\": {}, \"retries\": {}, ",
                    e.kind,
                    e.sampled_rows,
                    e.est_nnz,
                    e.actual_nnz,
                    e.chunk_hits,
                    e.chunk_misses,
                    e.overflow_rows,
                    e.retries,
                ));
                if e.headroom.is_finite() {
                    s.push_str(&format!("\"headroom\": {} }},\n", e.headroom));
                } else {
                    s.push_str("\"headroom\": null },\n");
                }
            }
            None => s.push_str("  \"estimator\": null,\n"),
        }
        s.push_str("  \"tenants\": [");
        for (i, t) in self.tenants.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {{ \"tenant\": \"{}\", \"submitted\": {}, \"completed\": {}, \
                 \"shed\": {}, \"quota_queued\": {}, \"deadline_missed\": {}, \
                 \"batch_hits\": {}, \"flops\": {}, \
                 \"busy_ns\": {}, \"queued_ns\": {} }}",
                t.tenant,
                t.submitted,
                t.completed,
                t.shed,
                t.quota_queued,
                t.deadline_missed,
                t.batch_hits,
                t.flops,
                t.busy_ns,
                t.queued_ns
            ));
        }
        if !self.tenants.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("],\n");
        match &self.service {
            Some(sv) => {
                let cap = match sv.grid_cache_bytes {
                    Some(c) => c.to_string(),
                    None => "null".to_string(),
                };
                s.push_str(&format!(
                    "  \"service\": {{ \"grid_cache_bytes\": {cap}, \
                     \"resident_grid_bytes\": {}, \
                     \"resident_grid_high_water_bytes\": {}, \"resident_grids\": {}, \
                     \"grid_inserts\": {}, \"grid_evictions\": {}, \"grid_rebuilds\": {}, \
                     \"matrices_resident\": {}, \"matrix_bytes\": {}, \
                     \"matrices_released\": {}, \"deadline_missed\": {} }},\n",
                    sv.resident_grid_bytes,
                    sv.resident_grid_high_water_bytes,
                    sv.resident_grids,
                    sv.grid_inserts,
                    sv.grid_evictions,
                    sv.grid_rebuilds,
                    sv.matrices_resident,
                    sv.matrix_bytes,
                    sv.matrices_released,
                    sv.deadline_missed,
                ));
            }
            None => s.push_str("  \"service\": null,\n"),
        }
        s.push_str("  \"degradations\": [");
        for (i, d) in self.degradations.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {{ \"cause\": \"{}\", \"at_ns\": {}, \"cost_ns\": {} }}",
                d.cause.name(),
                d.at_ns,
                d.cost_ns
            ));
        }
        if !self.degradations.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("],\n");
        s.push_str("  \"chunks\": [");
        for (i, c) in self.chunks.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let cause = match c.demotion_cause {
                Some(DemotionCause::DeviceMemory) => "\"device_memory\"".to_string(),
                Some(DemotionCause::Faults) => "\"faults\"".to_string(),
                Some(DemotionCause::Deadline) => "\"deadline\"".to_string(),
                None => "null".to_string(),
            };
            s.push_str(&format!(
                "\n    {{ \"row\": {}, \"col\": {}, \"attempts\": {}, \"resplits\": {}, \
                 \"demotions\": {}, \"demotion_cause\": {cause} }}",
                c.row, c.col, c.attempts, c.resplits, c.demotions
            ));
        }
        if !self.chunks.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("]\n}\n");
        s
    }
}

fn push_u64(s: &mut String, indent: usize, key: &str, v: u64, comma: bool) {
    s.push_str(&"  ".repeat(indent));
    s.push_str(&format!("\"{key}\": {v}"));
    s.push_str(if comma { ",\n" } else { "\n" });
}

fn push_f64(s: &mut String, indent: usize, key: &str, v: f64, comma: bool) {
    s.push_str(&"  ".repeat(indent));
    // Non-finite values have no JSON literal; they cannot occur here
    // (all divisors are guarded) but null beats invalid output.
    if v.is_finite() {
        s.push_str(&format!("\"{key}\": {v}"));
    } else {
        s.push_str(&format!("\"{key}\": null"));
    }
    s.push_str(if comma { ",\n" } else { "\n" });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_metrics_serialize_to_balanced_json() {
        let json = Metrics::default().to_json();
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces:\n{json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"completion_ns\": 0"));
        assert!(json.contains("\"kernel_classes\": []"));
        assert!(json.contains("\"chunks\": []"));
    }

    #[test]
    fn chunk_counters_serialize_with_causes() {
        let mut c = ChunkMetrics::new(ChunkId { row: 1, col: 2 });
        c.attempts = 3;
        c.demotions = 1;
        c.demotion_cause = Some(DemotionCause::DeviceMemory);
        let m = Metrics {
            chunks: vec![c],
            ..Metrics::default()
        };
        let json = m.to_json();
        assert!(json.contains("\"row\": 1, \"col\": 2, \"attempts\": 3"));
        assert!(json.contains("\"demotion_cause\": \"device_memory\""));
    }

    #[test]
    fn degradation_events_serialize_with_cause_names() {
        let json = Metrics::default().to_json();
        assert!(json.contains("\"degradations\": []"), "{json}");
        let m = Metrics::default().with_degradations(vec![
            DegradationEvent {
                cause: DegradationCause::HeadroomShrink,
                at_ns: 10,
                cost_ns: 0,
            },
            DegradationEvent {
                cause: DegradationCause::DeadlineDemotion,
                at_ns: 20,
                cost_ns: 5,
            },
        ]);
        let json = m.to_json();
        assert!(json.contains("\"cause\": \"headroom_shrink\""), "{json}");
        assert!(json.contains("\"cause\": \"deadline_demotion\""));
        assert!(json.contains("\"cost_ns\": 5"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn deadline_demotion_cause_serializes() {
        let mut c = ChunkMetrics::new(ChunkId { row: 0, col: 0 });
        c.demotions = 1;
        c.demotion_cause = Some(DemotionCause::Deadline);
        let m = Metrics {
            chunks: vec![c],
            ..Metrics::default()
        };
        assert!(m.to_json().contains("\"demotion_cause\": \"deadline\""));
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut m = Metrics::default();
        m.timeline.overlap_efficiency = f64::NAN;
        assert!(m.to_json().contains("\"overlap_efficiency\": null"));
    }

    #[test]
    fn estimator_stats_serialize_and_default_to_null() {
        let json = Metrics::default().to_json();
        assert!(json.contains("\"estimator\": null"), "{json}");
        let m = Metrics::default().with_estimator(EstimatorStats {
            kind: "row-sample".into(),
            sampled_rows: 30,
            est_nnz: 900,
            actual_nnz: 1000,
            chunk_hits: 5,
            chunk_misses: 1,
            overflow_rows: 12,
            retries: 1,
            headroom: 1.5,
        });
        let json = m.to_json();
        assert!(json.contains("\"kind\": \"row-sample\""), "{json}");
        assert!(json.contains("\"est_nnz\": 900"));
        assert!(json.contains("\"actual_nnz\": 1000"));
        assert!(json.contains("\"chunk_misses\": 1"));
        assert!(json.contains("\"overflow_rows\": 12"));
        assert!(json.contains("\"headroom\": 1.5"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn tenant_stats_serialize_and_default_to_empty() {
        let json = Metrics::default().to_json();
        assert!(json.contains("\"tenants\": []"), "{json}");
        let m = Metrics::default().with_tenants(vec![TenantStats {
            tenant: "acme".into(),
            submitted: 10,
            completed: 8,
            shed: 1,
            quota_queued: 2,
            deadline_missed: 1,
            batch_hits: 3,
            flops: 1_000_000,
            busy_ns: 50_000,
            queued_ns: 7_000,
        }]);
        let json = m.to_json();
        assert!(json.contains("\"tenant\": \"acme\""), "{json}");
        assert!(json.contains("\"submitted\": 10"));
        assert!(json.contains("\"shed\": 1"));
        assert!(json.contains("\"quota_queued\": 2"));
        assert!(json.contains("\"deadline_missed\": 1"));
        assert!(json.contains("\"batch_hits\": 3"));
        assert!(json.contains("\"queued_ns\": 7000"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn service_stats_serialize_and_default_to_null() {
        let json = Metrics::default().to_json();
        assert!(json.contains("\"service\": null"), "{json}");
        let m = Metrics::default().with_service(ServiceStats {
            grid_cache_bytes: Some(1 << 20),
            resident_grid_bytes: 700_000,
            resident_grid_high_water_bytes: 1_000_000,
            resident_grids: 2,
            grid_inserts: 9,
            grid_evictions: 7,
            grid_rebuilds: 4,
            matrices_resident: 3,
            matrix_bytes: 120_000,
            matrices_released: 1,
            deadline_missed: 2,
        });
        let json = m.to_json();
        assert!(json.contains("\"grid_cache_bytes\": 1048576"), "{json}");
        assert!(json.contains("\"resident_grid_bytes\": 700000"));
        assert!(json.contains("\"resident_grid_high_water_bytes\": 1000000"));
        assert!(json.contains("\"grid_evictions\": 7"));
        assert!(json.contains("\"grid_rebuilds\": 4"));
        assert!(json.contains("\"matrices_released\": 1"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        // An unbounded cache serializes its cap as null.
        let m = Metrics::default().with_service(ServiceStats::default());
        assert!(m.to_json().contains("\"grid_cache_bytes\": null"));
    }

    #[test]
    fn cpu_kernel_stats_serialize_and_default_to_null() {
        let json = Metrics::default().to_json();
        assert!(json.contains("\"cpu_kernels\": null"), "{json}");
        let mut stats = CpuKernelStats::new("adaptive");
        stats.record(gpu_sim::CpuKernelClass::Hash);
        stats.record(gpu_sim::CpuKernelClass::Merge);
        stats.record(gpu_sim::CpuKernelClass::Merge);
        assert_eq!(stats.total(), 3);
        let m = Metrics::default().with_cpu_kernels(stats);
        let json = m.to_json();
        assert!(json.contains("\"kernel\": \"adaptive\""), "{json}");
        assert!(json.contains("\"hash_picks\": 1"));
        assert!(json.contains("\"dense_picks\": 0"));
        assert!(json.contains("\"merge_picks\": 2"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn scheduler_stats_serialize_and_default_to_null() {
        let json = Metrics::default().to_json();
        assert!(json.contains("\"scheduler\": null"), "{json}");
        let m = Metrics::default().with_scheduler(SchedulerStats {
            kind: SchedulerKind::WorkStealing,
            gpu_claims: 8,
            cpu_steals: 4,
            gpu_idle_ns: 0,
            cpu_idle_ns: 1234,
            realized_gpu_ratio: 0.71,
        });
        let json = m.to_json();
        assert!(json.contains("\"kind\": \"work-stealing\""), "{json}");
        assert!(json.contains("\"gpu_claims\": 8"));
        assert!(json.contains("\"cpu_steals\": 4"));
        assert!(json.contains("\"cpu_idle_ns\": 1234"));
        assert!(json.contains("\"realized_gpu_ratio\": 0.71"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
