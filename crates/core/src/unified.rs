//! Unified-memory baseline — the alternative the paper's introduction
//! argues against.
//!
//! "Recently, unified memory ... allows the applications to access the
//! memory on the host side transparently, and load the data to GPU
//! memory when there are page faults. ... However, without the
//! knowledge of the SpGEMM, the loaded memory pages may contain some
//! data which are useless and waste the bandwidth. Besides, there are
//! overheads with page faults." (Section I)
//!
//! This module models exactly that: an *in-core style* SpGEMM over the
//! whole matrices where every access is demand-paged. When the working
//! set (`A + B + C`) exceeds device memory, each phase re-faults the
//! pages the previous phase evicted, so the same bytes cross PCIe
//! repeatedly — with a per-fault overhead on top. The comparison
//! against the explicit out-of-core executor (see the `ablate` binary
//! and integration tests) reproduces the paper's motivation for
//! building one.

use crate::metrics::{DegradationCause, DegradationEvent};
use crate::{OocError, Result};
use gpu_sim::{CostModel, DeviceProps, KernelKind, SimTime};
use sparse::stats;
use sparse::CsrMatrix;

/// Unified-memory page size (CUDA UM migrates at 64 KiB granularity).
pub const UM_PAGE_BYTES: u64 = 64 << 10;

/// Per-page-fault handling overhead (GPU fault + host driver + map).
pub const UM_FAULT_NS: u64 = 25_000;

/// Outcome of a unified-memory run.
#[derive(Debug, Clone)]
pub struct UnifiedRun {
    /// End-to-end simulated time, ns.
    pub sim_ns: SimTime,
    /// Total bytes migrated host→device across all fault storms.
    pub h2d_bytes: u64,
    /// Total bytes written back device→host.
    pub d2h_bytes: u64,
    /// Total page faults taken.
    pub faults: u64,
    /// Flops of the product.
    pub flops: u64,
    /// Whether the working set thrashed (exceeded device memory).
    pub thrashed: bool,
    /// The thrash as a degradation event: `cost_ns` is the simulated
    /// time lost to re-fault storms versus a device the working set
    /// would have fit on. `None` when the run did not thrash.
    pub degradation: Option<DegradationEvent>,
}

impl UnifiedRun {
    /// GFLOPS over simulated time.
    pub fn gflops(&self) -> f64 {
        if self.sim_ns == 0 {
            return 0.0;
        }
        self.flops as f64 / self.sim_ns as f64
    }

    /// Simulated milliseconds.
    pub fn sim_ms(&self) -> f64 {
        self.sim_ns as f64 / 1e6
    }
}

fn pages(bytes: u64) -> u64 {
    bytes.div_ceil(UM_PAGE_BYTES)
}

/// Migration cost of faulting `bytes` onto the device: one fault
/// overhead per page plus the page traffic at H2D bandwidth.
fn fault_cost(cost: &CostModel, bytes: u64) -> (SimTime, u64) {
    let n = pages(bytes);
    let traffic = ((n * UM_PAGE_BYTES) as f64 / cost.h2d_bandwidth * 1e9).round() as SimTime;
    (n * UM_FAULT_NS + traffic, n)
}

/// Simulates `C = a · b` under demand-paged unified memory.
pub fn multiply_unified(
    a: &CsrMatrix,
    b: &CsrMatrix,
    device: &DeviceProps,
    cost: &CostModel,
) -> Result<UnifiedRun> {
    if a.n_cols() != b.n_rows() {
        return Err(OocError::Sparse(sparse::SparseError::DimensionMismatch {
            op: "unified spgemm",
            lhs: (a.n_rows(), a.n_cols()),
            rhs: (b.n_rows(), b.n_cols()),
        }));
    }
    let flops = stats::total_flops(a, b);
    let nnz_c = stats::symbolic_nnz(a, b);
    let ratio = if nnz_c == 0 {
        1.0
    } else {
        flops as f64 / nnz_c as f64
    };

    let a_bytes = a.storage_bytes() as u64;
    let b_bytes = b.storage_bytes() as u64;
    let c_bytes = nnz_c * 12 + (a.n_rows() as u64 + 1) * 8;
    let capacity = device.device_memory_bytes;
    let thrashed = a_bytes + b_bytes + c_bytes > capacity;

    let mut sim_ns: SimTime = 0;
    let mut h2d_bytes = 0u64;
    let mut faults = 0u64;

    // Phase inputs: (touched bytes, kernel). When the working set fits,
    // pages fault only the first time they are touched; when it
    // thrashes, every phase re-faults its whole footprint because the
    // previous phase evicted it.
    let phases: [(u64, KernelKind); 3] = [
        (
            a_bytes,
            KernelKind::RowAnalysis {
                ops: a.nnz() as u64,
            },
        ),
        (
            a_bytes + b_bytes,
            KernelKind::Symbolic {
                flops,
                compression_ratio: ratio,
            },
        ),
        (
            a_bytes + b_bytes + c_bytes,
            KernelKind::Numeric {
                flops,
                compression_ratio: ratio,
            },
        ),
    ];
    let mut resident = 0u64;
    // What the same run would cost on a device the working set fits on
    // (cold faults only) — the baseline the thrash penalty is measured
    // against.
    let mut fitted_ns: SimTime = 0;
    let mut fitted_resident = 0u64;
    for (touched, kernel) in phases {
        let to_fault = if thrashed {
            touched
        } else {
            touched.saturating_sub(resident)
        };
        let cold_fault = touched.saturating_sub(fitted_resident);
        fitted_resident = fitted_resident.max(touched);
        resident = resident.max(touched.min(capacity));
        let (t, n) = fault_cost(cost, to_fault);
        sim_ns += t;
        fitted_ns += fault_cost(cost, cold_fault).0;
        faults += n;
        h2d_bytes += pages(to_fault) * UM_PAGE_BYTES;
        // Faults serialize with the kernel (the kernel stalls on them),
        // so the phase cost is additive — the concurrency loss the
        // paper attributes to UM.
        let kernel_ns = cost.kernel_duration(kernel);
        sim_ns += kernel_ns;
        fitted_ns += kernel_ns;
    }

    // C is written on the device and must migrate back (writeback at
    // D2H bandwidth, page granularity).
    let wb_pages = pages(c_bytes);
    let d2h_bytes = wb_pages * UM_PAGE_BYTES;
    let wb_ns =
        wb_pages * UM_FAULT_NS + (d2h_bytes as f64 / cost.d2h_bandwidth * 1e9).round() as SimTime;
    sim_ns += wb_ns;
    // Writeback is the same either way; it is not part of the penalty.
    fitted_ns += wb_ns;

    Ok(UnifiedRun {
        sim_ns,
        h2d_bytes,
        d2h_bytes,
        faults,
        flops,
        thrashed,
        degradation: thrashed.then(|| DegradationEvent {
            cause: DegradationCause::UnifiedThrash,
            // Thrashing is structural: the working set exceeds the
            // device from the first phase on.
            at_ns: 0,
            cost_ns: sim_ns.saturating_sub(fitted_ns),
        }),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OocConfig, OutOfCoreGpu};
    use sparse::gen::erdos_renyi;

    #[test]
    fn fits_in_core_faults_once() {
        let a = erdos_renyi(300, 300, 0.05, 1);
        let big = DeviceProps::v100(); // 16 GB — everything fits
        let run = multiply_unified(&a, &a, &big, &CostModel::calibrated()).unwrap();
        assert!(!run.thrashed);
        // Cold faults only: bytes faulted ≈ A + B + C (page-rounded).
        let nnz_c = sparse::stats::symbolic_nnz(&a, &a);
        let upper = 2 * a.storage_bytes() as u64 + nnz_c * 12 + 301 * 8 + 6 * UM_PAGE_BYTES;
        assert!(run.h2d_bytes <= upper, "{} > {}", run.h2d_bytes, upper);
    }

    #[test]
    fn thrashing_multiplies_traffic() {
        let a = erdos_renyi(600, 600, 0.03, 2);
        let small = DeviceProps::v100_scaled(1 << 19);
        let big = DeviceProps::v100();
        let cost = CostModel::calibrated();
        let thrash = multiply_unified(&a, &a, &small, &cost).unwrap();
        let fits = multiply_unified(&a, &a, &big, &cost).unwrap();
        assert!(thrash.thrashed);
        // Thrashing re-faults A and B once per phase: H2D traffic grows
        // by 2(A+B) over the cold-fault total.
        let extra = 2 * (2 * a.storage_bytes() as u64);
        assert!(
            thrash.h2d_bytes >= fits.h2d_bytes + extra / 2,
            "no re-fault traffic modeled: {} vs {}",
            thrash.h2d_bytes,
            fits.h2d_bytes
        );
        assert!(thrash.sim_ns > fits.sim_ns);
        assert!(thrash.faults > fits.faults);
    }

    #[test]
    fn thrash_surfaces_as_a_costed_degradation_event() {
        let a = erdos_renyi(600, 600, 0.03, 2);
        let cost = CostModel::calibrated();
        let fits = multiply_unified(&a, &a, &DeviceProps::v100(), &cost).unwrap();
        assert_eq!(fits.degradation, None);
        let thrash = multiply_unified(&a, &a, &DeviceProps::v100_scaled(1 << 19), &cost).unwrap();
        let ev = thrash.degradation.expect("thrashed run must report one");
        assert_eq!(ev.cause, DegradationCause::UnifiedThrash);
        // The penalty is exactly the time lost versus a fitting device:
        // both runs share kernels and writeback, so the event cost is
        // the sim-time gap.
        assert_eq!(ev.cost_ns, thrash.sim_ns - fits.sim_ns);
        assert!(ev.cost_ns > 0);
    }

    #[test]
    fn explicit_out_of_core_beats_unified_memory() {
        // The paper's motivating claim (Section I).
        let a = erdos_renyi(600, 600, 0.03, 7);
        let device = 3u64 << 19;
        let um = multiply_unified(
            &a,
            &a,
            &DeviceProps::v100_scaled(device),
            &CostModel::calibrated(),
        )
        .unwrap();
        let ooc = OutOfCoreGpu::new(OocConfig::with_device_memory(device))
            .multiply(&a, &a)
            .unwrap();
        assert!(
            ooc.sim_ns < um.sim_ns,
            "out-of-core {} must beat unified memory {}",
            ooc.sim_ns,
            um.sim_ns
        );
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let a = CsrMatrix::zeros(3, 4);
        let b = CsrMatrix::zeros(5, 3);
        assert!(multiply_unified(&a, &b, &DeviceProps::v100(), &CostModel::calibrated()).is_err());
    }
}
