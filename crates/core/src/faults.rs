//! Deterministic **host-side** fault injection — the other half of the
//! CPU-GPU node.
//!
//! `gpu_sim::fault` covers the simulated device (kernel launches,
//! copies, `cudaMalloc`, pool reservations). A [`HostFaultPlan`]
//! covers everything that can go wrong on the host around it: spill
//! I/O to disk (transient read/write errors and silent shard
//! corruption — real bit-flips that the FNV-1a checksums must catch),
//! transient CPU-kernel failures on demoted or CPU-assigned chunks,
//! and host-allocation pressure stalls while recovery re-prepares
//! sub-chunks.
//!
//! The mechanics mirror the device plan exactly: each category draws
//! from its *own* ChaCha stream derived from the plan seed, every
//! decision consumes exactly one draw, and `max_consecutive` bounds
//! runs of injections so bounded retries always make progress. The
//! same plan replayed over the same op sequence injects the same
//! faults, byte-reproducibly.
//!
//! Injection only ever perturbs *simulated time* and *which recovery
//! path runs* — never the numeric result. The bit-identical-`C`
//! invariant of the device fault layer extends to the whole node.

use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Category of an injected host-side fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum HostFaultKind {
    /// Transient spill-shard read error (retryable).
    SpillRead,
    /// Transient spill-shard write error (retryable).
    SpillWrite,
    /// Silent on-disk shard corruption (a real bit-flip; detected by
    /// the FNV-1a checksum and repaired by recomputation).
    Corruption,
    /// Transient CPU-kernel failure on a demoted or CPU-assigned chunk
    /// (the chunk is recomputed, costing another CPU pass).
    CpuKernel,
    /// Host-allocation pressure: a recovery-time host allocation
    /// stalls before succeeding.
    HostAlloc,
}

impl std::fmt::Display for HostFaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HostFaultKind::SpillRead => write!(f, "spill-read"),
            HostFaultKind::SpillWrite => write!(f, "spill-write"),
            HostFaultKind::Corruption => write!(f, "corruption"),
            HostFaultKind::CpuKernel => write!(f, "cpu-kernel"),
            HostFaultKind::HostAlloc => write!(f, "host-alloc"),
        }
    }
}

/// A seeded, deterministic host-fault schedule.
///
/// All rates are probabilities in `[0, 1]` evaluated independently per
/// operation; `max_consecutive` bounds how many times in a row a
/// single category may inject.
#[derive(Clone, Debug, PartialEq)]
pub struct HostFaultPlan {
    /// Seed for the per-category ChaCha streams.
    pub seed: u64,
    /// Injection probability per spill-shard read.
    pub spill_read_rate: f64,
    /// Injection probability per spill-shard write.
    pub spill_write_rate: f64,
    /// Probability a committed shard is silently corrupted on disk.
    pub corruption_rate: f64,
    /// Injection probability per CPU chunk kernel.
    pub cpu_kernel_rate: f64,
    /// Injection probability per recovery-time host allocation.
    pub host_alloc_rate: f64,
    /// Maximum consecutive injections per category.
    pub max_consecutive: u32,
}

impl HostFaultPlan {
    /// A plan with the given seed and all rates zero.
    pub fn seeded(seed: u64) -> Self {
        HostFaultPlan {
            seed,
            spill_read_rate: 0.0,
            spill_write_rate: 0.0,
            corruption_rate: 0.0,
            cpu_kernel_rate: 0.0,
            host_alloc_rate: 0.0,
            max_consecutive: 2,
        }
    }

    /// Sets the spill-read fault rate.
    pub fn spill_read_rate(mut self, rate: f64) -> Self {
        self.spill_read_rate = rate;
        self
    }

    /// Sets the spill-write fault rate.
    pub fn spill_write_rate(mut self, rate: f64) -> Self {
        self.spill_write_rate = rate;
        self
    }

    /// Sets the shard-corruption rate.
    pub fn corruption_rate(mut self, rate: f64) -> Self {
        self.corruption_rate = rate;
        self
    }

    /// Sets the CPU-kernel fault rate.
    pub fn cpu_kernel_rate(mut self, rate: f64) -> Self {
        self.cpu_kernel_rate = rate;
        self
    }

    /// Sets the host-allocation pressure rate.
    pub fn host_alloc_rate(mut self, rate: f64) -> Self {
        self.host_alloc_rate = rate;
        self
    }

    /// Sets all five rates at once.
    pub fn all_rates(self, rate: f64) -> Self {
        self.spill_read_rate(rate)
            .spill_write_rate(rate)
            .corruption_rate(rate)
            .cpu_kernel_rate(rate)
            .host_alloc_rate(rate)
    }

    /// Sets the maximum consecutive injections per category.
    pub fn max_consecutive(mut self, n: u32) -> Self {
        self.max_consecutive = n;
        self
    }

    /// Every rate in the plan, for validation sweeps.
    pub fn rates(&self) -> [(&'static str, f64); 5] {
        [
            ("spill-read", self.spill_read_rate),
            ("spill-write", self.spill_write_rate),
            ("corruption", self.corruption_rate),
            ("cpu-kernel", self.cpu_kernel_rate),
            ("host-alloc", self.host_alloc_rate),
        ]
    }

    /// Derives an independent per-stream plan (same rates, decorrelated
    /// seed) — used to give each consumer site (spill writer, executor
    /// pass loop, hybrid CPU worker, each multi-GPU device) its own
    /// fault stream so one site's draws never shift another's.
    pub fn derive(&self, stream: u64) -> Self {
        let mut p = self.clone();
        p.seed = self
            .seed
            .wrapping_add(stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .rotate_left(17)
            ^ 0xD1B5_4A32_D192_ED03;
        p
    }
}

/// Well-known [`HostFaultPlan::derive`] stream ids, one per consumer
/// site, so independent sites never share a ChaCha stream.
pub mod streams {
    /// The out-of-core executor's pass loop (demotions, re-splits).
    pub const EXECUTOR: u64 = 0x01;
    /// The hybrid executor's CPU worker.
    pub const CPU_WORKER: u64 = 0x02;
    /// The spill-to-disk writer ([`crate::spill::multiply_to_disk`]).
    pub const SPILL_WRITE: u64 = 0x03;
    /// The spill resume/verification reader.
    pub const SPILL_READ: u64 = 0x04;
    /// Base id for per-device multi-GPU streams (`MULTI_GPU + device`).
    pub const MULTI_GPU: u64 = 0x10;
}

const CATEGORY_SALTS: [u64; 5] = [
    0x7370_696c_6c72_0005, // "spillr"
    0x7370_696c_6c77_0006, // "spillw"
    0x636f_7272_7570_0007, // "corrup"
    0x6370_756b_6572_0008, // "cpuker"
    0x686f_7374_616c_0009, // "hostal"
];

fn category_index(kind: HostFaultKind) -> usize {
    match kind {
        HostFaultKind::SpillRead => 0,
        HostFaultKind::SpillWrite => 1,
        HostFaultKind::Corruption => 2,
        HostFaultKind::CpuKernel => 3,
        HostFaultKind::HostAlloc => 4,
    }
}

/// Counters of injected host faults, per category.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HostFaultStats {
    /// Spill-read faults injected.
    pub spill_read: u64,
    /// Spill-write faults injected.
    pub spill_write: u64,
    /// Shards corrupted on disk.
    pub corruption: u64,
    /// CPU-kernel faults injected.
    pub cpu_kernel: u64,
    /// Host-allocation stalls injected.
    pub host_alloc: u64,
}

impl HostFaultStats {
    /// Total host faults injected across all categories.
    pub fn total(&self) -> u64 {
        self.spill_read + self.spill_write + self.corruption + self.cpu_kernel + self.host_alloc
    }
}

/// Live injection state: one ChaCha stream per category plus
/// consecutive-injection bookkeeping.
#[derive(Debug)]
pub struct HostFaultState {
    plan: HostFaultPlan,
    streams: [ChaCha8Rng; 5],
    consecutive: [u32; 5],
    injected: [u64; 5],
}

impl HostFaultState {
    /// Builds the injection state for a plan.
    pub fn new(plan: HostFaultPlan) -> Self {
        let streams =
            std::array::from_fn(|i| ChaCha8Rng::seed_from_u64(plan.seed ^ CATEGORY_SALTS[i]));
        HostFaultState {
            plan,
            streams,
            consecutive: [0; 5],
            injected: [0; 5],
        }
    }

    /// The plan driving this state.
    pub fn plan(&self) -> &HostFaultPlan {
        &self.plan
    }

    /// Draws the category's stream once and decides whether to inject.
    /// Always consumes exactly one draw, so the decision sequence is a
    /// pure function of the plan and the op sequence.
    pub fn roll(&mut self, kind: HostFaultKind) -> bool {
        let i = category_index(kind);
        let rate = match kind {
            HostFaultKind::SpillRead => self.plan.spill_read_rate,
            HostFaultKind::SpillWrite => self.plan.spill_write_rate,
            HostFaultKind::Corruption => self.plan.corruption_rate,
            HostFaultKind::CpuKernel => self.plan.cpu_kernel_rate,
            HostFaultKind::HostAlloc => self.plan.host_alloc_rate,
        };
        let threshold = (rate.clamp(0.0, 1.0) * u32::MAX as f64) as u64;
        let draw = self.streams[i].next_u32() as u64;
        let inject = draw < threshold && self.consecutive[i] < self.plan.max_consecutive;
        if inject {
            self.consecutive[i] += 1;
            self.injected[i] += 1;
        } else {
            self.consecutive[i] = 0;
        }
        inject
    }

    /// A deterministic corruption site for a shard of `len` bytes:
    /// `(byte offset, XOR mask)`. Draws the corruption stream once; the
    /// mask is never zero so the flip always lands.
    pub fn corruption_site(&mut self, len: u64) -> (u64, u8) {
        let i = category_index(HostFaultKind::Corruption);
        let draw = self.streams[i].next_u32();
        let offset = if len == 0 { 0 } else { draw as u64 % len };
        let mask = ((draw >> 8) as u8) | 1;
        (offset, mask)
    }

    /// Injection counters so far.
    pub fn stats(&self) -> HostFaultStats {
        HostFaultStats {
            spill_read: self.injected[0],
            spill_write: self.injected[1],
            corruption: self.injected[2],
            cpu_kernel: self.injected[3],
            host_alloc: self.injected[4],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rolls_are_deterministic() {
        let run = |seed| {
            let mut st = HostFaultState::new(HostFaultPlan::seeded(seed).all_rates(0.3));
            (0..200)
                .map(|_| st.roll(HostFaultKind::CpuKernel))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds should differ");
    }

    #[test]
    fn categories_draw_independent_streams() {
        let mut a = HostFaultState::new(HostFaultPlan::seeded(42).all_rates(0.5));
        let mut b = HostFaultState::new(HostFaultPlan::seeded(42).all_rates(0.5));
        for _ in 0..50 {
            a.roll(HostFaultKind::SpillWrite);
        }
        let seq_a: Vec<bool> = (0..50).map(|_| a.roll(HostFaultKind::CpuKernel)).collect();
        let seq_b: Vec<bool> = (0..50).map(|_| b.roll(HostFaultKind::CpuKernel)).collect();
        assert_eq!(seq_a, seq_b);
    }

    #[test]
    fn max_consecutive_guarantees_progress() {
        let mut st =
            HostFaultState::new(HostFaultPlan::seeded(1).all_rates(1.0).max_consecutive(2));
        assert!(st.roll(HostFaultKind::SpillWrite));
        assert!(st.roll(HostFaultKind::SpillWrite));
        assert!(
            !st.roll(HostFaultKind::SpillWrite),
            "third consecutive roll must pass"
        );
        assert!(
            st.roll(HostFaultKind::SpillWrite),
            "counter resets after a clean roll"
        );
    }

    #[test]
    fn zero_rate_never_injects() {
        let mut st = HostFaultState::new(HostFaultPlan::seeded(99));
        assert!((0..1000).all(|_| !st.roll(HostFaultKind::HostAlloc)));
        assert_eq!(st.stats().total(), 0);
    }

    #[test]
    fn corruption_site_is_deterministic_and_in_bounds() {
        let mut a = HostFaultState::new(HostFaultPlan::seeded(5).all_rates(1.0));
        let mut b = HostFaultState::new(HostFaultPlan::seeded(5).all_rates(1.0));
        for len in [1u64, 7, 4096, 1 << 20] {
            let (off_a, mask_a) = a.corruption_site(len);
            let (off_b, mask_b) = b.corruption_site(len);
            assert_eq!((off_a, mask_a), (off_b, mask_b));
            assert!(off_a < len);
            assert_ne!(mask_a, 0, "mask must actually flip a bit");
        }
        let (off, _) = a.corruption_site(0);
        assert_eq!(off, 0, "zero-length shards degrade gracefully");
    }

    #[test]
    fn derive_changes_seed_only_and_decorrelates() {
        let base = HostFaultPlan::seeded(5).all_rates(0.2);
        let d = base.derive(streams::SPILL_WRITE);
        assert_ne!(d.seed, base.seed);
        assert_eq!(d.cpu_kernel_rate, base.cpu_kernel_rate);
        assert_ne!(
            base.derive(streams::EXECUTOR).seed,
            base.derive(streams::CPU_WORKER).seed
        );
    }

    #[test]
    fn stats_count_per_category() {
        let mut st = HostFaultState::new(
            HostFaultPlan::seeded(3)
                .cpu_kernel_rate(1.0)
                .max_consecutive(1),
        );
        st.roll(HostFaultKind::CpuKernel); // inject
        st.roll(HostFaultKind::CpuKernel); // blocked by max_consecutive
        st.roll(HostFaultKind::SpillRead); // rate 0 -> clean
        let s = st.stats();
        assert_eq!(s.cpu_kernel, 1);
        assert_eq!(s.spill_read, 0);
        assert_eq!(s.total(), 1);
    }
}
