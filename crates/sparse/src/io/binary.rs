//! Compact little-endian binary CSR format ("SPB1").
//!
//! Layout: magic `SPB1`, then `n_rows`, `n_cols`, `nnz` as `u64`,
//! then the three CSR arrays (`row_offsets` as `u64`, `col_ids` as
//! `u32`, `values` as `f64` bits). Reloading a converted matrix is
//! `O(nnz)` with no parsing — the same reason SpGEMM papers convert
//! `.mtx` inputs to binary before timing.

use crate::csr::{ColId, CsrMatrix};
use crate::{Result, SparseError};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::io::{Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"SPB1";

/// Serializes `m` into an owned byte buffer.
pub fn to_bytes(m: &CsrMatrix) -> Bytes {
    let mut buf = BytesMut::with_capacity(4 + 24 + m.row_offsets().len() * 8 + m.nnz() * (4 + 8));
    buf.put_slice(MAGIC);
    buf.put_u64_le(m.n_rows() as u64);
    buf.put_u64_le(m.n_cols() as u64);
    buf.put_u64_le(m.nnz() as u64);
    for &o in m.row_offsets() {
        buf.put_u64_le(o as u64);
    }
    for &c in m.col_ids() {
        buf.put_u32_le(c);
    }
    for &v in m.values() {
        buf.put_f64_le(v);
    }
    buf.freeze()
}

/// Deserializes a matrix from bytes produced by [`to_bytes`].
pub fn from_bytes(mut data: Bytes) -> Result<CsrMatrix> {
    let fail = |msg: &str| SparseError::Parse {
        line: 0,
        msg: msg.into(),
    };
    if data.remaining() < 4 + 24 {
        return Err(fail("truncated header"));
    }
    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(fail("bad magic (not an SPB1 file)"));
    }
    let n_rows = data.get_u64_le() as usize;
    let n_cols = data.get_u64_le() as usize;
    let nnz = data.get_u64_le() as usize;
    // Checked arithmetic: forged headers must not wrap the size
    // computation and sneak past the length check into a huge
    // allocation.
    let need = n_rows
        .checked_add(1)
        .and_then(|r| r.checked_mul(8))
        .and_then(|o| nnz.checked_mul(4 + 8).and_then(|e| o.checked_add(e)))
        .ok_or_else(|| fail("header sizes overflow"))?;
    if data.remaining() < need {
        return Err(fail("truncated body"));
    }
    let mut row_offsets = Vec::with_capacity(n_rows + 1);
    for _ in 0..=n_rows {
        row_offsets.push(data.get_u64_le() as usize);
    }
    let mut col_ids: Vec<ColId> = Vec::with_capacity(nnz);
    for _ in 0..nnz {
        col_ids.push(data.get_u32_le());
    }
    let mut values = Vec::with_capacity(nnz);
    for _ in 0..nnz {
        values.push(data.get_f64_le());
    }
    CsrMatrix::from_parts(n_rows, n_cols, row_offsets, col_ids, values)
}

/// Writes `m` to `path` in SPB1 format.
pub fn write_binary(path: &Path, m: &CsrMatrix) -> Result<()> {
    let bytes = to_bytes(m);
    let mut f = std::fs::File::create(path)?;
    f.write_all(&bytes)?;
    Ok(())
}

/// Reads an SPB1 file.
///
/// The 28-byte header (magic + counts) is read and validated against
/// the file's actual length *before* any size derived from it is
/// allocated, so a truncated or forged file is rejected without ever
/// reserving the memory its header claims to need.
pub fn read_binary(path: &Path) -> Result<CsrMatrix> {
    let fail = |msg: &str| SparseError::Parse {
        line: 0,
        msg: msg.into(),
    };
    let mut f = std::fs::File::open(path)?;
    let file_len = f.metadata()?.len();
    if file_len < (4 + 24) as u64 {
        return Err(fail("truncated header"));
    }
    let mut header = [0u8; 4 + 24];
    f.read_exact(&mut header)?;
    if &header[..4] != MAGIC {
        return Err(fail("bad magic (not an SPB1 file)"));
    }
    let field = |i: usize| {
        u64::from_le_bytes(header[4 + i * 8..12 + i * 8].try_into().expect("8 bytes")) as usize
    };
    let (n_rows, nnz) = (field(0), field(2));
    let need = n_rows
        .checked_add(1)
        .and_then(|r| r.checked_mul(8))
        .and_then(|o| nnz.checked_mul(4 + 8).and_then(|e| o.checked_add(e)))
        .ok_or_else(|| fail("header sizes overflow"))?;
    if file_len - (header.len() as u64) < need as u64 {
        return Err(fail("truncated body"));
    }
    // Only now is the header-derived size trusted enough to allocate.
    let mut data = Vec::with_capacity(header.len() + need);
    data.extend_from_slice(&header);
    f.take(need as u64).read_to_end(&mut data)?;
    from_bytes(Bytes::from(data))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::erdos::erdos_renyi;

    #[test]
    fn bytes_roundtrip() {
        let m = erdos_renyi(40, 55, 0.1, 17);
        let b = to_bytes(&m);
        let back = from_bytes(b).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn empty_matrix_roundtrip() {
        let m = CsrMatrix::zeros(0, 0);
        assert_eq!(from_bytes(to_bytes(&m)).unwrap(), m);
        let m = CsrMatrix::zeros(5, 9);
        assert_eq!(from_bytes(to_bytes(&m)).unwrap(), m);
    }

    #[test]
    fn rejects_bad_magic() {
        let m = erdos_renyi(5, 5, 0.3, 2);
        let mut raw = to_bytes(&m).to_vec();
        raw[0] = b'X';
        assert!(from_bytes(Bytes::from(raw)).is_err());
    }

    #[test]
    fn rejects_truncation() {
        let m = erdos_renyi(5, 5, 0.3, 2);
        let raw = to_bytes(&m);
        for cut in [0usize, 3, 10, raw.len() - 1] {
            assert!(
                from_bytes(raw.slice(..cut)).is_err(),
                "cut at {cut} accepted"
            );
        }
    }

    #[test]
    fn rejects_corrupted_structure() {
        let m = erdos_renyi(6, 6, 0.4, 3);
        let mut raw = to_bytes(&m).to_vec();
        // Corrupt the first row offset (byte 28..36) to a huge value.
        raw[28..36].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(from_bytes(Bytes::from(raw)).is_err());
    }

    #[test]
    fn forged_header_sizes_are_rejected_not_allocated() {
        let m = erdos_renyi(4, 4, 0.5, 1);
        // Overwrite n_rows (bytes 4..12) with 2^61: (n+1)*8 would wrap
        // to a tiny value without checked arithmetic.
        let mut raw = to_bytes(&m).to_vec();
        raw[4..12].copy_from_slice(&(1u64 << 61).to_le_bytes());
        assert!(from_bytes(Bytes::from(raw)).is_err());
        // Same for nnz (bytes 20..28).
        let mut raw = to_bytes(&m).to_vec();
        raw[20..28].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(from_bytes(Bytes::from(raw)).is_err());
    }

    #[test]
    fn read_binary_rejects_bad_files_without_allocating() {
        let dir = std::env::temp_dir().join("sparse_bin_reject_test");
        std::fs::create_dir_all(&dir).unwrap();
        let m = erdos_renyi(20, 20, 0.2, 5);
        let raw = to_bytes(&m).to_vec();

        // Truncated on disk: header claims more body than the file has.
        let path = dir.join("truncated.spb");
        std::fs::write(&path, &raw[..raw.len() - 1]).unwrap();
        assert!(read_binary(&path).is_err());

        // Forged n_rows of 2^61: must be rejected from the length
        // check, not by attempting an ~exabyte allocation.
        let mut forged = raw.clone();
        forged[4..12].copy_from_slice(&(1u64 << 61).to_le_bytes());
        let path = dir.join("forged.spb");
        std::fs::write(&path, &forged).unwrap();
        assert!(read_binary(&path).is_err());

        // Shorter than the header entirely.
        let path = dir.join("stub.spb");
        std::fs::write(&path, b"SPB1\x01").unwrap();
        assert!(read_binary(&path).is_err());

        // Wrong magic.
        let mut bad = raw.clone();
        bad[0] = b'Z';
        let path = dir.join("magic.spb");
        std::fs::write(&path, &bad).unwrap();
        assert!(read_binary(&path).is_err());

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("sparse_bin_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.spb");
        let m = erdos_renyi(30, 30, 0.2, 8);
        write_binary(&path, &m).unwrap();
        assert_eq!(read_binary(&path).unwrap(), m);
        std::fs::remove_file(&path).ok();
    }
}
