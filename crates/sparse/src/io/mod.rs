//! Matrix I/O: Matrix Market text files (the SuiteSparse interchange
//! format the paper's inputs ship in) and a compact binary format for
//! fast reloads.

pub mod binary;
pub mod market;

pub use binary::{read_binary, write_binary};
pub use market::{read_matrix_market, read_matrix_market_str, write_matrix_market};
