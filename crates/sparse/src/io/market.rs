//! Matrix Market (`.mtx`) reader and writer.
//!
//! Supports the `matrix coordinate (real|integer|pattern)
//! (general|symmetric)` subset, which covers every matrix in the
//! paper's evaluation suite. `pattern` entries get value 1.0;
//! `symmetric` files are expanded to full storage (off-diagonal entries
//! mirrored), matching how SpGEMM codes consume SuiteSparse inputs.

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;
use crate::{Result, SparseError};
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Field {
    Real,
    Integer,
    Pattern,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Symmetry {
    General,
    Symmetric,
}

/// Reads a Matrix Market file from disk.
pub fn read_matrix_market(path: &Path) -> Result<CsrMatrix> {
    let file = std::fs::File::open(path)?;
    read_matrix_market_from(BufReader::new(file))
}

/// Parses a Matrix Market document from a string.
pub fn read_matrix_market_str(text: &str) -> Result<CsrMatrix> {
    read_matrix_market_from(BufReader::new(text.as_bytes()))
}

fn parse_error(line: usize, msg: impl Into<String>) -> SparseError {
    SparseError::Parse {
        line,
        msg: msg.into(),
    }
}

fn read_matrix_market_from<R: Read>(reader: BufReader<R>) -> Result<CsrMatrix> {
    let mut lines = reader.lines().enumerate();

    // Header line.
    let (line_no, header) = loop {
        match lines.next() {
            Some((i, line)) => {
                let line = line?;
                if !line.trim().is_empty() {
                    break (i + 1, line);
                }
            }
            None => return Err(parse_error(0, "empty file")),
        }
    };
    let tokens: Vec<String> = header
        .split_whitespace()
        .map(|t| t.to_ascii_lowercase())
        .collect();
    if tokens.len() < 4 || tokens[0] != "%%matrixmarket" || tokens[1] != "matrix" {
        return Err(parse_error(line_no, "missing %%MatrixMarket matrix header"));
    }
    if tokens[2] != "coordinate" {
        return Err(parse_error(line_no, "only coordinate format is supported"));
    }
    let field = match tokens[3].as_str() {
        "real" => Field::Real,
        "integer" => Field::Integer,
        "pattern" => Field::Pattern,
        other => {
            return Err(parse_error(
                line_no,
                format!("unsupported field type {other}"),
            ))
        }
    };
    let symmetry = match tokens.get(4).map(|s| s.as_str()).unwrap_or("general") {
        "general" => Symmetry::General,
        "symmetric" => Symmetry::Symmetric,
        other => {
            return Err(parse_error(
                line_no,
                format!("unsupported symmetry {other}"),
            ))
        }
    };

    // Size line (skipping comments).
    let (size_line_no, size_line) = loop {
        match lines.next() {
            Some((i, line)) => {
                let line = line?;
                let t = line.trim();
                if !t.is_empty() && !t.starts_with('%') {
                    break (i + 1, line);
                }
            }
            None => return Err(parse_error(0, "missing size line")),
        }
    };
    let mut it = size_line.split_whitespace();
    let n_rows: usize = it
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| parse_error(size_line_no, "bad row count"))?;
    let n_cols: usize = it
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| parse_error(size_line_no, "bad column count"))?;
    let nnz: usize = it
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| parse_error(size_line_no, "bad nnz count"))?;

    let cap = if symmetry == Symmetry::Symmetric {
        nnz * 2
    } else {
        nnz
    };
    let mut coo = CooMatrix::with_capacity(n_rows, n_cols, cap);
    let mut seen = 0usize;
    for (i, line) in lines {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let line_no = i + 1;
        let mut it = t.split_whitespace();
        let r: usize = it
            .next()
            .and_then(|x| x.parse().ok())
            .ok_or_else(|| parse_error(line_no, "bad row index"))?;
        let c: usize = it
            .next()
            .and_then(|x| x.parse().ok())
            .ok_or_else(|| parse_error(line_no, "bad column index"))?;
        if r == 0 || c == 0 {
            return Err(parse_error(line_no, "Matrix Market indices are 1-based"));
        }
        let v = match field {
            Field::Pattern => 1.0,
            Field::Real | Field::Integer => it
                .next()
                .and_then(|x| x.parse::<f64>().ok())
                .ok_or_else(|| parse_error(line_no, "bad value"))?,
        };
        coo.push(r - 1, c - 1, v).map_err(|_| {
            parse_error(
                line_no,
                format!("entry ({r}, {c}) outside {n_rows}x{n_cols}"),
            )
        })?;
        if symmetry == Symmetry::Symmetric && r != c {
            coo.push(c - 1, r - 1, v).unwrap();
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(parse_error(
            0,
            format!("expected {nnz} entries, found {seen}"),
        ));
    }
    Ok(coo.to_csr())
}

/// Writes `m` to disk as `matrix coordinate real general`.
pub fn write_matrix_market(path: &Path, m: &CsrMatrix) -> Result<()> {
    let file = std::fs::File::create(path)?;
    let mut w = std::io::BufWriter::new(file);
    writeln!(w, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(w, "{} {} {}", m.n_rows(), m.n_cols(), m.nnz())?;
    for (r, c, v) in m.iter() {
        writeln!(w, "{} {} {:.17e}", r + 1, c + 1, v)?;
    }
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_general_real() {
        let text = "%%MatrixMarket matrix coordinate real general\n\
                    % a comment\n\
                    3 4 3\n\
                    1 1 1.5\n\
                    2 3 -2.0\n\
                    3 4 0.25\n";
        let m = read_matrix_market_str(text).unwrap();
        assert_eq!(m.n_rows(), 3);
        assert_eq!(m.n_cols(), 4);
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.get(0, 0), 1.5);
        assert_eq!(m.get(1, 2), -2.0);
        assert_eq!(m.get(2, 3), 0.25);
    }

    #[test]
    fn parses_pattern_symmetric() {
        let text = "%%MatrixMarket matrix coordinate pattern symmetric\n\
                    3 3 2\n\
                    2 1\n\
                    3 3\n";
        let m = read_matrix_market_str(text).unwrap();
        assert_eq!(m.nnz(), 3, "off-diagonal mirrored, diagonal not");
        assert_eq!(m.get(1, 0), 1.0);
        assert_eq!(m.get(0, 1), 1.0);
        assert_eq!(m.get(2, 2), 1.0);
    }

    #[test]
    fn rejects_zero_based_indices() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 5.0\n";
        assert!(read_matrix_market_str(text).is_err());
    }

    #[test]
    fn rejects_wrong_count() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 5.0\n";
        assert!(read_matrix_market_str(text).is_err());
    }

    #[test]
    fn rejects_bad_header() {
        assert!(read_matrix_market_str("hello\n1 1 0\n").is_err());
        assert!(read_matrix_market_str("%%MatrixMarket matrix array real general\n").is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("sparse_mm_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.mtx");
        let m = crate::gen::erdos::erdos_renyi(20, 25, 0.15, 5);
        write_matrix_market(&path, &m).unwrap();
        let back = read_matrix_market(&path).unwrap();
        assert_eq!(back, m);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn duplicate_entries_sum() {
        let text = "%%MatrixMarket matrix coordinate real general\n\
                    2 2 2\n\
                    1 1 1.0\n\
                    1 1 2.5\n";
        let m = read_matrix_market_str(text).unwrap();
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.get(0, 0), 3.5);
    }
}
