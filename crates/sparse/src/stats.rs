//! Matrix and product statistics — everything in the paper's Table II.
//!
//! * `flop(A·B)` — the number of floating-point operations Gustavson's
//!   algorithm performs (a multiply-add counts as 2 flops, per the
//!   paper's convention).
//! * `nnz(A·B)` — computed with a symbolic pass (no values).
//! * *compression ratio* — `flop / nnz(product)`, the paper's key
//!   predictor of out-of-core performance (Section V-C).

use crate::csr::CsrMatrix;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Per-row flop counts for the product `a * b`: row `i` costs
/// `2 * Σ_{k ∈ row i of a} nnz(b row k)`.
pub fn row_flops(a: &CsrMatrix, b: &CsrMatrix) -> Vec<u64> {
    assert_eq!(a.n_cols(), b.n_rows(), "inner dimensions must agree");
    (0..a.n_rows())
        .into_par_iter()
        .map(|r| {
            2 * a
                .row_cols(r)
                .iter()
                .map(|&k| b.row_nnz(k as usize) as u64)
                .sum::<u64>()
        })
        .collect()
}

/// Total flops of the product `a * b` (multiply-add = 2 flops).
pub fn total_flops(a: &CsrMatrix, b: &CsrMatrix) -> u64 {
    assert_eq!(a.n_cols(), b.n_rows(), "inner dimensions must agree");
    (0..a.n_rows())
        .into_par_iter()
        .map(|r| {
            2 * a
                .row_cols(r)
                .iter()
                .map(|&k| b.row_nnz(k as usize) as u64)
                .sum::<u64>()
        })
        .sum()
}

/// Symbolic nnz of each row of the product `a * b`.
///
/// Parallel over row blocks; each worker keeps a generation-stamped
/// dense marker array (no clearing between rows), which is the standard
/// symbolic-phase trick the GPU implementations in the paper also use.
pub fn symbolic_row_nnz(a: &CsrMatrix, b: &CsrMatrix) -> Vec<usize> {
    assert_eq!(a.n_cols(), b.n_rows(), "inner dimensions must agree");
    let n_cols = b.n_cols();
    let n_rows = a.n_rows();
    (0..n_rows.div_ceil(SYMBOLIC_BLOCK).max(1))
        .into_par_iter()
        .flat_map_iter(|block| {
            let lo = block * SYMBOLIC_BLOCK;
            let hi = (lo + SYMBOLIC_BLOCK).min(n_rows);
            let mut marker = vec![u32::MAX; n_cols];
            let mut out = Vec::with_capacity(hi - lo);
            for r in lo..hi {
                let stamp = r as u32;
                let mut count = 0usize;
                for &k in a.row_cols(r) {
                    for &c in b.row_cols(k as usize) {
                        if marker[c as usize] != stamp {
                            marker[c as usize] = stamp;
                            count += 1;
                        }
                    }
                }
                out.push(count);
            }
            out
        })
        .collect()
}

/// Rows handled per worker in the blocked symbolic passes.
const SYMBOLIC_BLOCK: usize = 2048;

/// Total nnz of the product `a * b`, computed symbolically.
pub fn symbolic_nnz(a: &CsrMatrix, b: &CsrMatrix) -> u64 {
    symbolic_row_nnz(a, b).iter().map(|&n| n as u64).sum()
}

/// The full symbolic *structure* of `a * b`: row offsets and sorted
/// column ids of the product, without values.
///
/// This is what the out-of-core planner uses to evaluate panel grids
/// exactly — the distribution of output nonzeros across column panels
/// is highly non-uniform for matrices with locality (e.g. web crawls),
/// so proportional estimates undershoot badly.
pub fn symbolic_structure(a: &CsrMatrix, b: &CsrMatrix) -> (Vec<usize>, Vec<crate::ColId>) {
    assert_eq!(a.n_cols(), b.n_rows(), "inner dimensions must agree");
    let n_cols = b.n_cols();
    let n_rows = a.n_rows();
    // Pass 1: parallel symbolic count, then an exclusive prefix sum
    // giving every row its final slot in the flat column buffer.
    let row_nnz = symbolic_row_nnz(a, b);
    let mut offsets = Vec::with_capacity(n_rows + 1);
    let mut acc = 0usize;
    offsets.push(0);
    for &n in &row_nnz {
        acc += n;
        offsets.push(acc);
    }
    // Pass 2: parallel fill. Each worker owns the disjoint sub-slice of
    // the output covering its row block, so no per-row vectors and no
    // serial concatenation are needed.
    let mut cols = vec![0 as crate::ColId; acc];
    let n_blocks = n_rows.div_ceil(SYMBOLIC_BLOCK);
    let mut slices: Vec<(usize, &mut [crate::ColId])> = Vec::with_capacity(n_blocks);
    let mut rem: &mut [crate::ColId] = &mut cols;
    for block in 0..n_blocks {
        let lo = block * SYMBOLIC_BLOCK;
        let hi = (lo + SYMBOLIC_BLOCK).min(n_rows);
        let (head, tail) = rem.split_at_mut(offsets[hi] - offsets[lo]);
        slices.push((lo, head));
        rem = tail;
    }
    slices.into_par_iter().for_each(|(lo, slice)| {
        let hi = (lo + SYMBOLIC_BLOCK).min(n_rows);
        let mut marker = vec![u32::MAX; n_cols];
        let base = offsets[lo];
        for r in lo..hi {
            let row = &mut slice[offsets[r] - base..offsets[r + 1] - base];
            let stamp = r as u32;
            let mut w = 0usize;
            for &k in a.row_cols(r) {
                for &c in b.row_cols(k as usize) {
                    if marker[c as usize] != stamp {
                        marker[c as usize] = stamp;
                        row[w] = c;
                        w += 1;
                    }
                }
            }
            debug_assert_eq!(w, row.len(), "fill must match the counting pass");
            row.sort_unstable();
        }
    });
    (offsets, cols)
}

/// Exact per-chunk output nonzeros of a `row_ranges × col_bounds` panel
/// grid, computed from the symbolic structure `(offsets, cols)` of the
/// product (as returned by [`symbolic_structure`]).
///
/// `col_bounds[j]` is the exclusive upper bound of column panel `j`
/// (for contiguous panels starting at 0 this is `col_ranges[j].end`);
/// bounds must be ascending and the last bound must cover every column
/// id present. Each row's sorted column list is binned adaptively:
/// sparse rows use a single forward cursor over the bounds
/// (`O(row_nnz + k_c)`), while rows much longer than `k_c · log(row_nnz)`
/// use one binary search per boundary instead — so a re-bin of the whole
/// structure costs `O(Σ_r min(row_nnz, k_c·log row_nnz))`, never worse
/// than either strategy alone.
///
/// Returns a row-major `row_ranges.len() × col_bounds.len()` grid.
pub fn chunk_nnz_grid(
    offsets: &[usize],
    cols: &[crate::ColId],
    row_ranges: &[std::ops::Range<usize>],
    col_bounds: &[usize],
) -> Vec<u64> {
    let k_c = col_bounds.len();
    let per_panel: Vec<Vec<u64>> = row_ranges
        .par_iter()
        .map(|rr| {
            let mut counts = vec![0u64; k_c];
            for r in rr.clone() {
                let row = &cols[offsets[r]..offsets[r + 1]];
                let bits = usize::BITS - row.len().leading_zeros();
                if row.len() > 2 * k_c * bits as usize {
                    let mut lo = 0usize;
                    for (j, &bound) in col_bounds.iter().enumerate() {
                        let hi = lo + row[lo..].partition_point(|&c| (c as usize) < bound);
                        counts[j] += (hi - lo) as u64;
                        lo = hi;
                    }
                } else {
                    let mut j = 0usize;
                    for &c in row {
                        while (c as usize) >= col_bounds[j] {
                            j += 1;
                        }
                        counts[j] += 1;
                    }
                }
            }
            counts
        })
        .collect();
    per_panel.into_iter().flatten().collect()
}

/// Summary statistics of a single matrix.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MatrixStats {
    /// Number of rows.
    pub n_rows: usize,
    /// Number of columns.
    pub n_cols: usize,
    /// Stored non-zeros.
    pub nnz: usize,
    /// Mean entries per row.
    pub avg_row_nnz: f64,
    /// Largest row.
    pub max_row_nnz: usize,
    /// Number of empty rows.
    pub empty_rows: usize,
    /// Coefficient of variation of row lengths (skew indicator — the
    /// paper observes skewed graph matrices compress poorly).
    pub row_nnz_cv: f64,
}

impl MatrixStats {
    /// Computes statistics for `m`.
    pub fn of(m: &CsrMatrix) -> Self {
        let n = m.n_rows();
        let nnz = m.nnz();
        let mean = if n == 0 { 0.0 } else { nnz as f64 / n as f64 };
        let mut max = 0usize;
        let mut empty = 0usize;
        let mut var_acc = 0.0f64;
        for r in 0..n {
            let len = m.row_nnz(r);
            max = max.max(len);
            if len == 0 {
                empty += 1;
            }
            let d = len as f64 - mean;
            var_acc += d * d;
        }
        let std = if n == 0 {
            0.0
        } else {
            (var_acc / n as f64).sqrt()
        };
        MatrixStats {
            n_rows: n,
            n_cols: m.n_cols(),
            nnz,
            avg_row_nnz: mean,
            max_row_nnz: max,
            empty_rows: empty,
            row_nnz_cv: if mean > 0.0 { std / mean } else { 0.0 },
        }
    }
}

/// The Table II row for a matrix: features of `A` and of the product
/// `A·A`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ProductStats {
    /// Number of rows/columns of the (square) matrix.
    pub n: usize,
    /// `nnz(A)`.
    pub nnz_a: usize,
    /// `flop(A²)` — multiply-add counts as 2.
    pub flops: u64,
    /// `nnz(A²)` from the symbolic pass.
    pub nnz_c: u64,
    /// `flop(A²) / nnz(A²)` — the compression ratio.
    pub compression_ratio: f64,
}

impl ProductStats {
    /// Computes the Table II features of `C = A·A`.
    pub fn square(a: &CsrMatrix) -> Self {
        Self::of(a, a)
    }

    /// Computes product features for general `C = A·B`.
    pub fn of(a: &CsrMatrix, b: &CsrMatrix) -> Self {
        let flops = total_flops(a, b);
        let nnz_c = symbolic_nnz(a, b);
        ProductStats {
            n: a.n_rows(),
            nnz_a: a.nnz(),
            flops,
            nnz_c,
            compression_ratio: if nnz_c == 0 {
                0.0
            } else {
                flops as f64 / nnz_c as f64
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> CsrMatrix {
        // [ 1 0 2 0 ]
        // [ 0 3 0 0 ]
        // [ 4 0 0 5 ]
        // [ 0 0 6 0 ]
        CsrMatrix::from_parts(
            4,
            4,
            vec![0, 2, 3, 5, 6],
            vec![0, 2, 1, 0, 3, 2],
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
        )
        .unwrap()
    }

    #[test]
    fn row_flops_counts_scaled_b_rows() {
        let a = example();
        // row 0 of A hits B rows 0 (2 nnz) and 2 (2 nnz) -> 2*(2+2) = 8
        let f = row_flops(&a, &a);
        assert_eq!(f, vec![8, 2, 6, 4]);
        assert_eq!(total_flops(&a, &a), 20);
    }

    #[test]
    fn symbolic_nnz_matches_manual_product() {
        let a = example();
        // A^2 computed by hand:
        // row0 = 1*row0 + 2*row2 = {0:1, 2:2} + {0:8, 3:10} -> cols {0,2,3}
        // row1 = 3*row1 -> {1}
        // row2 = 4*row0 + 5*row3 -> {0,2} + {2} -> {0,2}
        // row3 = 6*row2 -> {0,3}
        assert_eq!(symbolic_row_nnz(&a, &a), vec![3, 1, 2, 2]);
        assert_eq!(symbolic_nnz(&a, &a), 8);
    }

    #[test]
    fn symbolic_identity_product_keeps_structure() {
        let a = example();
        let i = CsrMatrix::identity(4);
        assert_eq!(symbolic_nnz(&a, &i), a.nnz() as u64);
        assert_eq!(symbolic_nnz(&i, &a), a.nnz() as u64);
        assert_eq!(total_flops(&i, &a), 2 * a.nnz() as u64);
    }

    #[test]
    fn symbolic_structure_matches_counts() {
        let a = example();
        let (offsets, cols) = symbolic_structure(&a, &a);
        let counts = symbolic_row_nnz(&a, &a);
        assert_eq!(offsets.len(), 5);
        for r in 0..4 {
            let row = &cols[offsets[r]..offsets[r + 1]];
            assert_eq!(row.len(), counts[r]);
            for w in row.windows(2) {
                assert!(w[0] < w[1], "columns must be sorted and distinct");
            }
        }
        // Row 0 of A^2 hits columns {0, 2, 3}.
        assert_eq!(&cols[offsets[0]..offsets[1]], &[0, 2, 3]);
    }

    #[test]
    fn chunk_nnz_grid_matches_filter_counts() {
        let a = example();
        let (offsets, cols) = symbolic_structure(&a, &a);
        let row_ranges = vec![0..2, 2..4];
        let col_ranges = [0..1usize, 1..3, 3..4];
        let col_bounds: Vec<usize> = col_ranges.iter().map(|c| c.end).collect();
        let grid = chunk_nnz_grid(&offsets, &cols, &row_ranges, &col_bounds);
        assert_eq!(grid.len(), 6);
        for (i, rr) in row_ranges.iter().enumerate() {
            for (j, cr) in col_ranges.iter().enumerate() {
                let expect: u64 = rr
                    .clone()
                    .map(|r| {
                        cols[offsets[r]..offsets[r + 1]]
                            .iter()
                            .filter(|&&c| cr.contains(&(c as usize)))
                            .count() as u64
                    })
                    .sum();
                assert_eq!(grid[i * col_ranges.len() + j], expect, "chunk ({i}, {j})");
            }
        }
        assert_eq!(
            grid.iter().sum::<u64>(),
            cols.len() as u64,
            "grid partitions nnz(C)"
        );
    }

    #[test]
    fn chunk_nnz_grid_dense_rows_take_binary_path() {
        // Rows long enough to cross the `2·k_c·log` threshold must agree
        // with the linear-cursor counts (here recomputed by filtering).
        let n_cols = 512usize;
        let offsets = vec![0, n_cols, n_cols, 2 * n_cols];
        let mut cols: Vec<crate::ColId> = (0..n_cols as crate::ColId).collect();
        cols.extend(0..n_cols as crate::ColId);
        let row_ranges = vec![0..2, 2..3];
        let col_bounds = vec![100usize, 101, 400, n_cols];
        let grid = chunk_nnz_grid(&offsets, &cols, &row_ranges, &col_bounds);
        let expect = |rr: &std::ops::Range<usize>, lo: usize, hi: usize| -> u64 {
            rr.clone()
                .map(|r| {
                    cols[offsets[r]..offsets[r + 1]]
                        .iter()
                        .filter(|&&c| (lo..hi).contains(&(c as usize)))
                        .count() as u64
                })
                .sum()
        };
        for (i, rr) in row_ranges.iter().enumerate() {
            let mut lo = 0usize;
            for (j, &hi) in col_bounds.iter().enumerate() {
                assert_eq!(
                    grid[i * col_bounds.len() + j],
                    expect(rr, lo, hi),
                    "chunk ({i}, {j})"
                );
                lo = hi;
            }
        }
        assert_eq!(grid.iter().sum::<u64>(), cols.len() as u64);
    }

    #[test]
    fn matrix_stats_basic() {
        let s = MatrixStats::of(&example());
        assert_eq!(s.n_rows, 4);
        assert_eq!(s.nnz, 6);
        assert_eq!(s.max_row_nnz, 2);
        assert_eq!(s.empty_rows, 0);
        assert!((s.avg_row_nnz - 1.5).abs() < 1e-12);
        assert!(s.row_nnz_cv > 0.0);
    }

    #[test]
    fn matrix_stats_uniform_rows_have_zero_cv() {
        let i = CsrMatrix::identity(8);
        let s = MatrixStats::of(&i);
        assert_eq!(s.row_nnz_cv, 0.0);
        assert_eq!(s.max_row_nnz, 1);
    }

    #[test]
    fn product_stats_compression_ratio() {
        let a = example();
        let p = ProductStats::square(&a);
        assert_eq!(p.flops, 20);
        assert_eq!(p.nnz_c, 8);
        assert!((p.compression_ratio - 2.5).abs() < 1e-12);
    }

    #[test]
    fn empty_matrix_stats() {
        let z = CsrMatrix::zeros(3, 3);
        let p = ProductStats::square(&z);
        assert_eq!(p.flops, 0);
        assert_eq!(p.nnz_c, 0);
        assert_eq!(p.compression_ratio, 0.0);
    }
}
