//! Matrix and product statistics — everything in the paper's Table II.
//!
//! * `flop(A·B)` — the number of floating-point operations Gustavson's
//!   algorithm performs (a multiply-add counts as 2 flops, per the
//!   paper's convention).
//! * `nnz(A·B)` — computed with a symbolic pass (no values).
//! * *compression ratio* — `flop / nnz(product)`, the paper's key
//!   predictor of out-of-core performance (Section V-C).

use crate::csr::CsrMatrix;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Per-row flop counts for the product `a * b`: row `i` costs
/// `2 * Σ_{k ∈ row i of a} nnz(b row k)`.
pub fn row_flops(a: &CsrMatrix, b: &CsrMatrix) -> Vec<u64> {
    assert_eq!(a.n_cols(), b.n_rows(), "inner dimensions must agree");
    (0..a.n_rows())
        .into_par_iter()
        .map(|r| 2 * a.row_cols(r).iter().map(|&k| b.row_nnz(k as usize) as u64).sum::<u64>())
        .collect()
}

/// Total flops of the product `a * b` (multiply-add = 2 flops).
pub fn total_flops(a: &CsrMatrix, b: &CsrMatrix) -> u64 {
    assert_eq!(a.n_cols(), b.n_rows(), "inner dimensions must agree");
    (0..a.n_rows())
        .into_par_iter()
        .map(|r| 2 * a.row_cols(r).iter().map(|&k| b.row_nnz(k as usize) as u64).sum::<u64>())
        .sum()
}

/// Symbolic nnz of each row of the product `a * b`.
///
/// Parallel over rows; each worker keeps a generation-stamped dense
/// marker array (no clearing between rows), which is the standard
/// symbolic-phase trick the GPU implementations in the paper also use.
pub fn symbolic_row_nnz(a: &CsrMatrix, b: &CsrMatrix) -> Vec<usize> {
    assert_eq!(a.n_cols(), b.n_rows(), "inner dimensions must agree");
    let n_cols = b.n_cols();
    let rows: Vec<usize> = (0..a.n_rows()).collect();
    rows.par_chunks(4096)
        .flat_map_iter(|chunk| {
            let mut marker = vec![u32::MAX; n_cols];
            let mut out = Vec::with_capacity(chunk.len());
            for &r in chunk {
                let stamp = r as u32;
                let mut count = 0usize;
                for &k in a.row_cols(r) {
                    for &c in b.row_cols(k as usize) {
                        if marker[c as usize] != stamp {
                            marker[c as usize] = stamp;
                            count += 1;
                        }
                    }
                }
                out.push(count);
            }
            out
        })
        .collect()
}

/// Total nnz of the product `a * b`, computed symbolically.
pub fn symbolic_nnz(a: &CsrMatrix, b: &CsrMatrix) -> u64 {
    symbolic_row_nnz(a, b).iter().map(|&n| n as u64).sum()
}

/// The full symbolic *structure* of `a * b`: row offsets and sorted
/// column ids of the product, without values.
///
/// This is what the out-of-core planner uses to evaluate panel grids
/// exactly — the distribution of output nonzeros across column panels
/// is highly non-uniform for matrices with locality (e.g. web crawls),
/// so proportional estimates undershoot badly.
pub fn symbolic_structure(a: &CsrMatrix, b: &CsrMatrix) -> (Vec<usize>, Vec<crate::ColId>) {
    assert_eq!(a.n_cols(), b.n_rows(), "inner dimensions must agree");
    let n_cols = b.n_cols();
    let rows: Vec<usize> = (0..a.n_rows()).collect();
    let per_row: Vec<Vec<crate::ColId>> = rows
        .par_chunks(2048)
        .flat_map_iter(|chunk| {
            let mut marker = vec![u32::MAX; n_cols];
            let mut out = Vec::with_capacity(chunk.len());
            for &r in chunk {
                let stamp = r as u32;
                let mut cols: Vec<crate::ColId> = Vec::new();
                for &k in a.row_cols(r) {
                    for &c in b.row_cols(k as usize) {
                        if marker[c as usize] != stamp {
                            marker[c as usize] = stamp;
                            cols.push(c);
                        }
                    }
                }
                cols.sort_unstable();
                out.push(cols);
            }
            out
        })
        .collect();
    let mut offsets = Vec::with_capacity(a.n_rows() + 1);
    offsets.push(0usize);
    let total: usize = per_row.iter().map(|r| r.len()).sum();
    let mut cols = Vec::with_capacity(total);
    for row in per_row {
        cols.extend_from_slice(&row);
        offsets.push(cols.len());
    }
    (offsets, cols)
}

/// Summary statistics of a single matrix.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MatrixStats {
    /// Number of rows.
    pub n_rows: usize,
    /// Number of columns.
    pub n_cols: usize,
    /// Stored non-zeros.
    pub nnz: usize,
    /// Mean entries per row.
    pub avg_row_nnz: f64,
    /// Largest row.
    pub max_row_nnz: usize,
    /// Number of empty rows.
    pub empty_rows: usize,
    /// Coefficient of variation of row lengths (skew indicator — the
    /// paper observes skewed graph matrices compress poorly).
    pub row_nnz_cv: f64,
}

impl MatrixStats {
    /// Computes statistics for `m`.
    pub fn of(m: &CsrMatrix) -> Self {
        let n = m.n_rows();
        let nnz = m.nnz();
        let mean = if n == 0 { 0.0 } else { nnz as f64 / n as f64 };
        let mut max = 0usize;
        let mut empty = 0usize;
        let mut var_acc = 0.0f64;
        for r in 0..n {
            let len = m.row_nnz(r);
            max = max.max(len);
            if len == 0 {
                empty += 1;
            }
            let d = len as f64 - mean;
            var_acc += d * d;
        }
        let std = if n == 0 { 0.0 } else { (var_acc / n as f64).sqrt() };
        MatrixStats {
            n_rows: n,
            n_cols: m.n_cols(),
            nnz,
            avg_row_nnz: mean,
            max_row_nnz: max,
            empty_rows: empty,
            row_nnz_cv: if mean > 0.0 { std / mean } else { 0.0 },
        }
    }
}

/// The Table II row for a matrix: features of `A` and of the product
/// `A·A`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ProductStats {
    /// Number of rows/columns of the (square) matrix.
    pub n: usize,
    /// `nnz(A)`.
    pub nnz_a: usize,
    /// `flop(A²)` — multiply-add counts as 2.
    pub flops: u64,
    /// `nnz(A²)` from the symbolic pass.
    pub nnz_c: u64,
    /// `flop(A²) / nnz(A²)` — the compression ratio.
    pub compression_ratio: f64,
}

impl ProductStats {
    /// Computes the Table II features of `C = A·A`.
    pub fn square(a: &CsrMatrix) -> Self {
        Self::of(a, a)
    }

    /// Computes product features for general `C = A·B`.
    pub fn of(a: &CsrMatrix, b: &CsrMatrix) -> Self {
        let flops = total_flops(a, b);
        let nnz_c = symbolic_nnz(a, b);
        ProductStats {
            n: a.n_rows(),
            nnz_a: a.nnz(),
            flops,
            nnz_c,
            compression_ratio: if nnz_c == 0 { 0.0 } else { flops as f64 / nnz_c as f64 },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> CsrMatrix {
        // [ 1 0 2 0 ]
        // [ 0 3 0 0 ]
        // [ 4 0 0 5 ]
        // [ 0 0 6 0 ]
        CsrMatrix::from_parts(
            4,
            4,
            vec![0, 2, 3, 5, 6],
            vec![0, 2, 1, 0, 3, 2],
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
        )
        .unwrap()
    }

    #[test]
    fn row_flops_counts_scaled_b_rows() {
        let a = example();
        // row 0 of A hits B rows 0 (2 nnz) and 2 (2 nnz) -> 2*(2+2) = 8
        let f = row_flops(&a, &a);
        assert_eq!(f, vec![8, 2, 6, 4]);
        assert_eq!(total_flops(&a, &a), 20);
    }

    #[test]
    fn symbolic_nnz_matches_manual_product() {
        let a = example();
        // A^2 computed by hand:
        // row0 = 1*row0 + 2*row2 = {0:1, 2:2} + {0:8, 3:10} -> cols {0,2,3}
        // row1 = 3*row1 -> {1}
        // row2 = 4*row0 + 5*row3 -> {0,2} + {2} -> {0,2}
        // row3 = 6*row2 -> {0,3}
        assert_eq!(symbolic_row_nnz(&a, &a), vec![3, 1, 2, 2]);
        assert_eq!(symbolic_nnz(&a, &a), 8);
    }

    #[test]
    fn symbolic_identity_product_keeps_structure() {
        let a = example();
        let i = CsrMatrix::identity(4);
        assert_eq!(symbolic_nnz(&a, &i), a.nnz() as u64);
        assert_eq!(symbolic_nnz(&i, &a), a.nnz() as u64);
        assert_eq!(total_flops(&i, &a), 2 * a.nnz() as u64);
    }

    #[test]
    fn symbolic_structure_matches_counts() {
        let a = example();
        let (offsets, cols) = symbolic_structure(&a, &a);
        let counts = symbolic_row_nnz(&a, &a);
        assert_eq!(offsets.len(), 5);
        for r in 0..4 {
            let row = &cols[offsets[r]..offsets[r + 1]];
            assert_eq!(row.len(), counts[r]);
            for w in row.windows(2) {
                assert!(w[0] < w[1], "columns must be sorted and distinct");
            }
        }
        // Row 0 of A^2 hits columns {0, 2, 3}.
        assert_eq!(&cols[offsets[0]..offsets[1]], &[0, 2, 3]);
    }

    #[test]
    fn matrix_stats_basic() {
        let s = MatrixStats::of(&example());
        assert_eq!(s.n_rows, 4);
        assert_eq!(s.nnz, 6);
        assert_eq!(s.max_row_nnz, 2);
        assert_eq!(s.empty_rows, 0);
        assert!((s.avg_row_nnz - 1.5).abs() < 1e-12);
        assert!(s.row_nnz_cv > 0.0);
    }

    #[test]
    fn matrix_stats_uniform_rows_have_zero_cv() {
        let i = CsrMatrix::identity(8);
        let s = MatrixStats::of(&i);
        assert_eq!(s.row_nnz_cv, 0.0);
        assert_eq!(s.max_row_nnz, 1);
    }

    #[test]
    fn product_stats_compression_ratio() {
        let a = example();
        let p = ProductStats::square(&a);
        assert_eq!(p.flops, 20);
        assert_eq!(p.nnz_c, 8);
        assert!((p.compression_ratio - 2.5).abs() < 1e-12);
    }

    #[test]
    fn empty_matrix_stats() {
        let z = CsrMatrix::zeros(3, 3);
        let p = ProductStats::square(&z);
        assert_eq!(p.flops, 0);
        assert_eq!(p.nnz_c, 0);
        assert_eq!(p.compression_ratio, 0.0);
    }
}
