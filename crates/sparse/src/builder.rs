//! Incremental row-by-row CSR construction.

use crate::csr::{ColId, CsrMatrix};
use crate::{Result, SparseError};

/// Builds a [`CsrMatrix`] one row at a time.
///
/// This is the natural construction path for SpGEMM executors: Gustavson's
/// algorithm (paper Algorithm 1) produces output rows in order, and each
/// accumulator flush appends one finished row.
#[derive(Clone, Debug)]
pub struct CsrBuilder {
    n_cols: usize,
    row_offsets: Vec<usize>,
    col_ids: Vec<ColId>,
    values: Vec<f64>,
}

impl CsrBuilder {
    /// Starts a builder for a matrix with `n_cols` columns.
    pub fn new(n_cols: usize) -> Self {
        CsrBuilder {
            n_cols,
            row_offsets: vec![0],
            col_ids: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Starts a builder with reserved capacity for `rows` rows and `nnz`
    /// entries.
    pub fn with_capacity(n_cols: usize, rows: usize, nnz: usize) -> Self {
        let mut row_offsets = Vec::with_capacity(rows + 1);
        row_offsets.push(0);
        CsrBuilder {
            n_cols,
            row_offsets,
            col_ids: Vec::with_capacity(nnz),
            values: Vec::with_capacity(nnz),
        }
    }

    /// Number of completed rows so far.
    pub fn rows_built(&self) -> usize {
        self.row_offsets.len() - 1
    }

    /// Number of entries appended so far.
    pub fn nnz(&self) -> usize {
        self.col_ids.len()
    }

    /// Appends a finished row given parallel `cols`/`vals` slices.
    ///
    /// # Errors
    /// Rejects unsorted or duplicate columns, out-of-range columns, and
    /// mismatched slice lengths.
    pub fn push_row(&mut self, cols: &[ColId], vals: &[f64]) -> Result<()> {
        if cols.len() != vals.len() {
            return Err(SparseError::InvalidCsr(format!(
                "row has {} cols but {} values",
                cols.len(),
                vals.len()
            )));
        }
        for w in cols.windows(2) {
            if w[0] >= w[1] {
                return Err(SparseError::InvalidCsr(
                    "row columns must be strictly increasing".into(),
                ));
            }
        }
        if let Some(&last) = cols.last() {
            if last as usize >= self.n_cols {
                return Err(SparseError::IndexOutOfBounds {
                    row: self.rows_built(),
                    col: last as usize,
                    n_rows: usize::MAX,
                    n_cols: self.n_cols,
                });
            }
        }
        self.col_ids.extend_from_slice(cols);
        self.values.extend_from_slice(vals);
        self.row_offsets.push(self.col_ids.len());
        Ok(())
    }

    /// Appends an empty row.
    pub fn push_empty_row(&mut self) {
        self.row_offsets.push(self.col_ids.len());
    }

    /// Finishes construction.
    pub fn finish(self) -> CsrMatrix {
        let n_rows = self.row_offsets.len() - 1;
        CsrMatrix::from_parts_unchecked(
            n_rows,
            self.n_cols,
            self.row_offsets,
            self.col_ids,
            self.values,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_rows_in_order() {
        let mut b = CsrBuilder::new(4);
        b.push_row(&[0, 2], &[1.0, 2.0]).unwrap();
        b.push_empty_row();
        b.push_row(&[3], &[4.0]).unwrap();
        assert_eq!(b.rows_built(), 3);
        assert_eq!(b.nnz(), 3);
        let m = b.finish();
        m.validate().unwrap();
        assert_eq!(m.n_rows(), 3);
        assert_eq!(m.row_cols(0), &[0, 2]);
        assert_eq!(m.row_nnz(1), 0);
        assert_eq!(m.get(2, 3), 4.0);
    }

    #[test]
    fn rejects_unsorted_row() {
        let mut b = CsrBuilder::new(4);
        assert!(b.push_row(&[2, 0], &[1.0, 2.0]).is_err());
        assert!(b.push_row(&[1, 1], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn rejects_out_of_range_column() {
        let mut b = CsrBuilder::new(2);
        assert!(b.push_row(&[2], &[1.0]).is_err());
    }

    #[test]
    fn rejects_length_mismatch() {
        let mut b = CsrBuilder::new(4);
        assert!(b.push_row(&[0, 1], &[1.0]).is_err());
    }

    #[test]
    fn empty_builder_finishes_to_zero_row_matrix() {
        let m = CsrBuilder::new(3).finish();
        assert_eq!(m.n_rows(), 0);
        assert_eq!(m.n_cols(), 3);
        m.validate().unwrap();
    }
}
