//! Deterministic synthetic matrix generators.
//!
//! The paper evaluates on 9 SuiteSparse matrices (Table II) that cannot
//! be redistributed here; these generators produce scaled-down analogues
//! with matched *shape statistics* — row-degree skew and, crucially, the
//! compression ratio `flop(A²)/nnz(A²)` that Section V-C identifies as
//! the performance driver:
//!
//! * [`rmat()`] — R-MAT power-law graphs (social-network analogues:
//!   LiveJournal, wikipedia-*; low compression ratio, high skew);
//! * [`locality`] — power-law graphs with strong neighborhood locality
//!   (web-crawl analogue: uk-2002; high compression ratio *and* skew);
//! * [`banded`] — regular grid stencils (PDE/optimization analogues:
//!   stokes, nlpkkt200; high compression ratio, no skew);
//! * [`erdos`] — Erdős–Rényi uniform random (tests and baselines);
//! * [`kron`] — exact Kronecker products (ground-truth structure for
//!   tests).
//!
//! All generators are seeded ([`rand_chacha::ChaCha8Rng`]) and
//! byte-reproducible across runs and platforms. [`suite()`] instantiates
//! the 9-matrix evaluation suite.

pub mod banded;
pub mod erdos;
pub mod kron;
pub mod locality;
pub mod rmat;
pub mod suite;

pub use banded::{grid2d_stencil, grid3d_stencil, saddle_stencil, tridiagonal};
pub use erdos::erdos_renyi;
pub use kron::kronecker;
pub use locality::locality_graph;
pub use rmat::{rmat, RmatConfig};
pub use suite::{suite, suite_matrix, SuiteMatrix, SuiteScale};
