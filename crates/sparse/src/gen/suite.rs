//! The 9-matrix evaluation suite — scaled analogues of Table II.
//!
//! The paper evaluates on 9 SuiteSparse matrices. Those files are
//! multi-gigabyte and not redistributable here, so each is replaced by
//! a deterministic generator chosen to match its *class* and its
//! compression-ratio regime (see DESIGN.md "Substitutions"):
//!
//! | paper matrix        | class                   | analogue                 |
//! |---------------------|-------------------------|--------------------------|
//! | ljournal-2008       | social graph, skewed    | R-MAT (skewed)           |
//! | com-LiveJournal     | social graph, skewed    | R-MAT (skewed)           |
//! | soc-LiveJournal1    | social graph, skewed    | R-MAT (skewed)           |
//! | stokes              | PDE, regular            | 2-D stencil + noise      |
//! | uk-2002             | web crawl, local+skewed | locality graph           |
//! | wikipedia-20070206  | link graph, mild skew   | R-MAT (mild)             |
//! | nlpkkt200           | KKT system, regular     | 3-D 27-point stencil     |
//! | wikipedia-20061104  | link graph, mild skew   | R-MAT (mild)             |
//! | wikipedia-20060925  | link graph, mild skew   | R-MAT (mild)             |
//!
//! Matrices are scaled down by roughly 150–700× in rows; the simulated
//! device memory is scaled down correspondingly (see the `oocgemm`
//! planner defaults) so every matrix remains genuinely out-of-core.

use crate::csr::CsrMatrix;
use crate::gen::banded::{grid2d_stencil, grid3d_stencil, saddle_stencil};
use crate::gen::erdos::erdos_renyi;
use crate::gen::locality::locality_graph;
use crate::gen::rmat::{rmat, RmatConfig};
use crate::ops::{add, random_symmetric_permutation};
use serde::{Deserialize, Serialize};

/// Identifier of one of the paper's 9 evaluation matrices.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SuiteMatrix {
    /// `ljournal-2008` — LiveJournal follower graph.
    Lj2008,
    /// `com-LiveJournal` — LiveJournal community graph.
    ComLj,
    /// `soc-LiveJournal1` — LiveJournal social graph.
    SocLj,
    /// `stokes` — fluid-dynamics matrix.
    Stokes,
    /// `uk-2002` — .uk web crawl.
    Uk2002,
    /// `wikipedia-20070206` — Wikipedia link graph.
    Wiki0206,
    /// `nlpkkt200` — nonlinear-programming KKT matrix.
    Nlp,
    /// `wikipedia-20061104` — Wikipedia link graph.
    Wiki1104,
    /// `wikipedia-20060925` — Wikipedia link graph.
    Wiki0925,
}

/// Generation scale: `Tiny` for unit tests (milliseconds), `Small` for
/// the experiment harness (the default), `Medium` for longer runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum SuiteScale {
    /// ~2-4 k rows; for tests.
    Tiny,
    /// ~16-32 k rows; the experiment default.
    #[default]
    Small,
    /// ~64-128 k rows; for stress runs.
    Medium,
}

/// Paper-reported Table II values (all counts in millions, as printed).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct PaperRow {
    /// Rows/columns, millions.
    pub n_millions: f64,
    /// `nnz(A)`, millions.
    pub nnz_millions: f64,
    /// `flop(A²)`, millions.
    pub flop_millions: f64,
    /// `nnz(A²)`, millions.
    pub nnz_c_millions: f64,
    /// Compression ratio `flop/nnz(A²)`.
    pub compression_ratio: f64,
}

impl SuiteMatrix {
    /// All nine matrices, in Table II order.
    pub fn all() -> [SuiteMatrix; 9] {
        [
            SuiteMatrix::Lj2008,
            SuiteMatrix::ComLj,
            SuiteMatrix::SocLj,
            SuiteMatrix::Stokes,
            SuiteMatrix::Uk2002,
            SuiteMatrix::Wiki0206,
            SuiteMatrix::Nlp,
            SuiteMatrix::Wiki1104,
            SuiteMatrix::Wiki0925,
        ]
    }

    /// Full SuiteSparse name.
    pub fn name(&self) -> &'static str {
        match self {
            SuiteMatrix::Lj2008 => "ljournal-2008",
            SuiteMatrix::ComLj => "com-LiveJournal",
            SuiteMatrix::SocLj => "soc-LiveJournal1",
            SuiteMatrix::Stokes => "stokes",
            SuiteMatrix::Uk2002 => "uk-2002",
            SuiteMatrix::Wiki0206 => "wikipedia-20070206",
            SuiteMatrix::Nlp => "nlpkkt200",
            SuiteMatrix::Wiki1104 => "wikipedia-20061104",
            SuiteMatrix::Wiki0925 => "wikipedia-20060925",
        }
    }

    /// Abbreviation used in the paper's figures.
    pub fn abbr(&self) -> &'static str {
        match self {
            SuiteMatrix::Lj2008 => "lj2008",
            SuiteMatrix::ComLj => "com-lj",
            SuiteMatrix::SocLj => "soc-lj",
            SuiteMatrix::Stokes => "stokes",
            SuiteMatrix::Uk2002 => "uk-2002",
            SuiteMatrix::Wiki0206 => "wiki0206",
            SuiteMatrix::Nlp => "nlp",
            SuiteMatrix::Wiki1104 => "wiki1104",
            SuiteMatrix::Wiki0925 => "wiki0925",
        }
    }

    /// The row of the paper's Table II for this matrix.
    pub fn paper_row(&self) -> PaperRow {
        let (n, nnz, flop, nnz_c, cr) = match self {
            SuiteMatrix::Lj2008 => (5.36, 79.02, 7828.66, 4245.41, 1.84),
            SuiteMatrix::ComLj => (4.00, 69.36, 8580.90, 4859.09, 1.77),
            SuiteMatrix::SocLj => (4.85, 68.99, 5915.63, 3366.05, 1.76),
            SuiteMatrix::Stokes => (11.45, 349.32, 9424.18, 2115.15, 4.46),
            SuiteMatrix::Uk2002 => (18.52, 298.11, 29206.61, 3194.99, 9.14),
            SuiteMatrix::Wiki0206 => (3.57, 45.03, 12796.04, 4802.94, 2.66),
            SuiteMatrix::Nlp => (16.24, 440.23, 24932.82, 2425.94, 10.28),
            SuiteMatrix::Wiki1104 => (3.15, 39.38, 10728.99, 4018.47, 2.67),
            SuiteMatrix::Wiki0925 => (2.98, 37.27, 10030.09, 3750.38, 2.67),
        };
        PaperRow {
            n_millions: n,
            nnz_millions: nnz,
            flop_millions: flop,
            nnz_c_millions: nnz_c,
            compression_ratio: cr,
        }
    }

    /// Generates the analogue matrix at the given scale.
    pub fn generate(&self, scale: SuiteScale) -> CsrMatrix {
        // `shift` scales R-MAT vertex counts; grids scale per-axis.
        let (shift, axis) = match scale {
            SuiteScale::Tiny => (3u32, 2usize),
            SuiteScale::Small => (0, 1),
            SuiteScale::Medium => (0, 1), // rows x2 via explicit params below
        };
        let medium = scale == SuiteScale::Medium;
        let e = |base: usize| {
            let e = base >> (2 * shift);
            if medium {
                e * 2
            } else {
                e
            }
        };
        let s = |base: u32| {
            if medium {
                base + 1 - shift
            } else {
                base - shift
            }
        };
        match self {
            SuiteMatrix::Lj2008 => rmat(RmatConfig::mild(s(16), e(560_000)), 0x1D2008),
            SuiteMatrix::ComLj => rmat(RmatConfig::mild(s(16), e(640_000)), 0xC0313),
            SuiteMatrix::SocLj => rmat(RmatConfig::mild(s(16), e(500_000)), 0x50C13),
            SuiteMatrix::Stokes => {
                // Velocity-pressure saddle system over a 2-D grid, plus
                // light irregularity to pull the ratio to stokes' 4.46.
                let side = 132 / axis * if medium { 2 } else { 1 };
                let h = grid2d_stencil(side, side, 2, 0x570CE5);
                let saddle = saddle_stencil(&h, 4, 1.0, 0x570CE7);
                let n = saddle.n_rows();
                let noise = erdos_renyi(n, n, 6.0 / n as f64, 0x570CE6);
                let sum = add(&saddle, &noise).expect("same shape");
                // SuiteSparse's stokes interleaves the saddle blocks;
                // a seeded symmetric permutation reproduces that
                // distribution (A^2 statistics are invariant).
                random_symmetric_permutation(&sum, 0x570CE8)
            }
            SuiteMatrix::Uk2002 => {
                let n = (32_768 / (1 << (2 * shift))) * if medium { 2 } else { 1 };
                locality_graph(n, 28.0, 8, 0.002, 0x0CE2002)
            }
            SuiteMatrix::Wiki0206 => rmat(RmatConfig::mild(s(14), e(210_000)), 0x31C10206),
            SuiteMatrix::Nlp => {
                // KKT saddle system over a 3-D 27-point stencil.
                let side = 24 / axis * if medium { 2 } else { 1 };
                let h = grid3d_stencil(side, side, side, 1, 0x1214200);
                let saddle = saddle_stencil(&h, 8, 1.0, 0x1214201);
                // Same interleaving argument as stokes: the published
                // nlpkkt orderings are not band-contiguous.
                random_symmetric_permutation(&saddle, 0x1214202)
            }
            SuiteMatrix::Wiki1104 => rmat(RmatConfig::mild(s(14), e(190_000)), 0x31C11104),
            SuiteMatrix::Wiki0925 => rmat(RmatConfig::mild(s(14), e(180_000)), 0x31C10925),
        }
    }
}

/// Generates the analogue for one matrix at the default (`Small`) scale.
pub fn suite_matrix(m: SuiteMatrix) -> CsrMatrix {
    m.generate(SuiteScale::Small)
}

/// Generates the whole 9-matrix suite at the given scale, in Table II
/// order.
pub fn suite(scale: SuiteScale) -> Vec<(SuiteMatrix, CsrMatrix)> {
    SuiteMatrix::all()
        .into_iter()
        .map(|m| (m, m.generate(scale)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::ProductStats;

    #[test]
    fn names_and_abbrs_are_unique() {
        let names: std::collections::HashSet<_> =
            SuiteMatrix::all().iter().map(|m| m.name()).collect();
        assert_eq!(names.len(), 9);
        let abbrs: std::collections::HashSet<_> =
            SuiteMatrix::all().iter().map(|m| m.abbr()).collect();
        assert_eq!(abbrs.len(), 9);
    }

    #[test]
    fn tiny_suite_generates_valid_matrices() {
        for (id, m) in suite(SuiteScale::Tiny) {
            m.validate()
                .unwrap_or_else(|e| panic!("{}: {e}", id.name()));
            assert!(m.n_rows() > 0, "{} empty", id.name());
            assert!(m.nnz() > 0, "{} has no entries", id.name());
            assert_eq!(m.n_rows(), m.n_cols(), "{} must be square", id.name());
        }
    }

    #[test]
    fn tiny_regular_matrices_beat_graphs_on_compression() {
        let nlp = ProductStats::square(&SuiteMatrix::Nlp.generate(SuiteScale::Tiny));
        let lj = ProductStats::square(&SuiteMatrix::ComLj.generate(SuiteScale::Tiny));
        assert!(
            nlp.compression_ratio > 2.0 * lj.compression_ratio,
            "nlp {} vs com-lj {}",
            nlp.compression_ratio,
            lj.compression_ratio
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let a = SuiteMatrix::Uk2002.generate(SuiteScale::Tiny);
        let b = SuiteMatrix::Uk2002.generate(SuiteScale::Tiny);
        assert_eq!(a, b);
    }

    #[test]
    fn paper_rows_match_table_ii_spot_checks() {
        let nlp = SuiteMatrix::Nlp.paper_row();
        assert_eq!(nlp.compression_ratio, 10.28);
        let soc = SuiteMatrix::SocLj.paper_row();
        assert_eq!(soc.nnz_millions, 68.99);
    }
}
