//! Regular stencil / banded matrices — analogues of the paper's
//! `stokes` and `nlpkkt200` PDE/optimization matrices.
//!
//! These matrices are *regular*: every row has a similar number of
//! entries clustered near the diagonal, so the neighborhoods of a row's
//! neighbors overlap heavily and the compression ratio of `A²` is high
//! (4.46 and 10.28 in Table II). Section V-C: "regular matrices such as
//! nlpkkt200 and stokes typically have a higher compression ratio".

use crate::csr::{ColId, CsrMatrix};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A simple tridiagonal matrix of order `n` (2 on the diagonal, -1 off).
pub fn tridiagonal(n: usize) -> CsrMatrix {
    let mut offsets = Vec::with_capacity(n + 1);
    let mut cols = Vec::with_capacity(3 * n);
    let mut vals = Vec::with_capacity(3 * n);
    offsets.push(0);
    for i in 0..n {
        if i > 0 {
            cols.push((i - 1) as ColId);
            vals.push(-1.0);
        }
        cols.push(i as ColId);
        vals.push(2.0);
        if i + 1 < n {
            cols.push((i + 1) as ColId);
            vals.push(-1.0);
        }
        offsets.push(cols.len());
    }
    CsrMatrix::from_parts_unchecked(n, n, offsets, cols, vals)
}

/// A 2-D `nx x ny` grid with a `(2k+1)²`-point square stencil: vertex
/// `(x, y)` couples to every vertex within Chebyshev distance `k`.
/// Values are seeded-random in `(0, 1]`.
pub fn grid2d_stencil(nx: usize, ny: usize, k: usize, seed: u64) -> CsrMatrix {
    let n = nx * ny;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut offsets = Vec::with_capacity(n + 1);
    let mut cols: Vec<ColId> = Vec::new();
    let mut vals: Vec<f64> = Vec::new();
    offsets.push(0);
    for x in 0..nx {
        for y in 0..ny {
            let x_lo = x.saturating_sub(k);
            let x_hi = (x + k).min(nx - 1);
            let y_lo = y.saturating_sub(k);
            let y_hi = (y + k).min(ny - 1);
            for xx in x_lo..=x_hi {
                for yy in y_lo..=y_hi {
                    cols.push((xx * ny + yy) as ColId);
                    vals.push(rng.gen_range(f64::EPSILON..=1.0));
                }
            }
            offsets.push(cols.len());
        }
    }
    CsrMatrix::from_parts_unchecked(n, n, offsets, cols, vals)
}

/// A 3-D `nx x ny x nz` grid with a `(2k+1)³`-point cubic stencil —
/// the `nlpkkt`-style generator (27-point for `k = 1`).
pub fn grid3d_stencil(nx: usize, ny: usize, nz: usize, k: usize, seed: u64) -> CsrMatrix {
    let n = nx * ny * nz;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut offsets = Vec::with_capacity(n + 1);
    let mut cols: Vec<ColId> = Vec::new();
    let mut vals: Vec<f64> = Vec::new();
    offsets.push(0);
    for x in 0..nx {
        let x_lo = x.saturating_sub(k);
        let x_hi = (x + k).min(nx - 1);
        for y in 0..ny {
            let y_lo = y.saturating_sub(k);
            let y_hi = (y + k).min(ny - 1);
            for z in 0..nz {
                let z_lo = z.saturating_sub(k);
                let z_hi = (z + k).min(nz - 1);
                for xx in x_lo..=x_hi {
                    for yy in y_lo..=y_hi {
                        for zz in z_lo..=z_hi {
                            cols.push(((xx * ny + yy) * nz + zz) as ColId);
                            vals.push(rng.gen_range(f64::EPSILON..=1.0));
                        }
                    }
                }
                offsets.push(cols.len());
            }
        }
    }
    CsrMatrix::from_parts_unchecked(n, n, offsets, cols, vals)
}

/// A saddle-point system `[[H, Bᵀ], [B, δI]]` over a grid stencil —
/// the structure of the real `stokes` (velocity-pressure) and
/// `nlpkkt200` (Hessian-constraint KKT) matrices.
///
/// `H` is a `(2k+1)^d`-point stencil over `n1` grid vertices; `B` has
/// `n2 = n1 / 2` constraint rows, each coupling to `coupling` nearby
/// grid vertices. Unlike a plain stencil, the product's nonzeros
/// spread over *four* diagonal bands (the quadrants of the block
/// square), which is what keeps the real matrices' output chunks from
/// collapsing onto a single column panel per row panel.
pub fn saddle_stencil(h: &CsrMatrix, coupling: usize, delta: f64, seed: u64) -> CsrMatrix {
    let n1 = h.n_rows();
    assert_eq!(n1, h.n_cols(), "H must be square");
    let n2 = n1 / 2;
    let n = n1 + n2;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut offsets = Vec::with_capacity(n + 1);
    let mut cols: Vec<ColId> = Vec::new();
    let mut vals: Vec<f64> = Vec::new();
    offsets.push(0);

    // B's columns per constraint row j: `coupling` consecutive vertices
    // starting at 2j (a local gradient/divergence stencil).
    let b_cols = |j: usize| {
        let start = (2 * j).min(n1.saturating_sub(coupling));
        start..(start + coupling).min(n1)
    };

    // Upper block rows: [ H | Bᵀ ].
    // Bᵀ row i holds a 1 for every constraint j with i in B's row j;
    // with the contiguous pattern above, j ranges over a small window.
    for i in 0..n1 {
        cols.extend_from_slice(h.row_cols(i));
        vals.extend_from_slice(h.row_values(i));
        let j_lo = i.saturating_sub(coupling - 1).div_ceil(2).min(n2);
        // Constraints near the end are clamped onto the same window, so
        // a vertex in the last `coupling` columns is seen by all of them.
        let j_hi = if i + coupling >= n1 {
            n2
        } else {
            ((i / 2) + 1).min(n2)
        };
        for j in j_lo..j_hi {
            if b_cols(j).contains(&i) {
                cols.push((n1 + j) as ColId);
                vals.push(rng.gen_range(0.1..=1.0));
            }
        }
        offsets.push(cols.len());
    }
    // Lower block rows: [ B | δI ].
    for j in 0..n2 {
        for i in b_cols(j) {
            cols.push(i as ColId);
            vals.push(rng.gen_range(0.1..=1.0));
        }
        if delta != 0.0 {
            cols.push((n1 + j) as ColId);
            vals.push(delta);
        }
        offsets.push(cols.len());
    }
    CsrMatrix::from_parts_unchecked(n, n, offsets, cols, vals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::ProductStats;

    #[test]
    fn tridiagonal_structure() {
        let m = tridiagonal(5);
        m.validate().unwrap();
        assert_eq!(m.nnz(), 13);
        assert_eq!(m.get(0, 0), 2.0);
        assert_eq!(m.get(2, 1), -1.0);
        assert_eq!(m.get(2, 3), -1.0);
        assert_eq!(m.get(0, 2), 0.0);
    }

    #[test]
    fn grid2d_interior_row_size() {
        let m = grid2d_stencil(10, 10, 1, 1);
        m.validate().unwrap();
        // Interior vertex (5,5) has a full 9-point stencil.
        assert_eq!(m.row_nnz(5 * 10 + 5), 9);
        // Corner (0,0) has 4.
        assert_eq!(m.row_nnz(0), 4);
        assert_eq!(m.n_rows(), 100);
    }

    #[test]
    fn grid3d_interior_row_size() {
        let m = grid3d_stencil(6, 6, 6, 1, 1);
        m.validate().unwrap();
        let interior = (3 * 6 + 3) * 6 + 3;
        assert_eq!(m.row_nnz(interior), 27);
        assert_eq!(m.row_nnz(0), 8);
    }

    #[test]
    fn stencils_have_high_compression_ratio() {
        let regular = grid3d_stencil(8, 8, 8, 1, 2);
        let p = ProductStats::square(&regular);
        assert!(
            p.compression_ratio > 4.0,
            "3-D stencil should compress well, got {}",
            p.compression_ratio
        );
        let skewed = crate::gen::rmat::rmat(crate::gen::rmat::RmatConfig::skewed(9, 4000), 2);
        let ps = ProductStats::square(&skewed);
        assert!(
            p.compression_ratio > ps.compression_ratio,
            "regular ({}) must beat skewed ({})",
            p.compression_ratio,
            ps.compression_ratio
        );
    }

    #[test]
    fn saddle_structure_is_valid_and_blocky() {
        let h = grid2d_stencil(12, 12, 1, 3);
        let m = saddle_stencil(&h, 4, 1.0, 5);
        m.validate().unwrap();
        let n1 = 144;
        assert_eq!(m.n_rows(), n1 + n1 / 2);
        // Upper rows carry H plus some B^T entries.
        assert!(m.row_nnz(70) >= h.row_nnz(70));
        // Lower rows carry `coupling` B entries plus the delta diagonal.
        let lower = n1 + 10;
        assert_eq!(m.row_nnz(lower), 5);
        assert_eq!(m.get(lower, n1 + 10), 1.0, "delta diagonal present");
        // B^T really is the transpose pattern of B.
        let t = crate::ops::transpose(&m);
        for i in 0..n1 {
            let bt_cols: Vec<_> = m
                .row_cols(i)
                .iter()
                .filter(|&&c| (c as usize) >= n1)
                .collect();
            let b_cols_of_i: Vec<_> = t
                .row_cols(i)
                .iter()
                .filter(|&&c| (c as usize) >= n1)
                .collect();
            assert_eq!(bt_cols, b_cols_of_i, "row {i} block asymmetry");
        }
    }

    #[test]
    fn saddle_spreads_product_across_quadrants() {
        let h = grid3d_stencil(8, 8, 8, 1, 2);
        let m = saddle_stencil(&h, 8, 1.0, 7);
        let n1 = 512;
        // The product of an upper row must hit both the H band and the
        // B^T band (columns beyond n1).
        let c = cpu_like_square(&m);
        let mid = n1 / 2;
        let has_left = c.row_cols(mid).iter().any(|&col| (col as usize) < n1);
        let has_right = c.row_cols(mid).iter().any(|&col| (col as usize) >= n1);
        assert!(
            has_left && has_right,
            "product did not spread across blocks"
        );
    }

    /// Small symbolic-squaring helper for tests (structure only).
    fn cpu_like_square(m: &CsrMatrix) -> CsrMatrix {
        let (offsets, cols) = crate::stats::symbolic_structure(m, m);
        let vals = vec![1.0; cols.len()];
        CsrMatrix::from_parts_unchecked(m.n_rows(), m.n_cols(), offsets, cols, vals)
    }

    #[test]
    fn deterministic_values() {
        assert_eq!(grid2d_stencil(5, 5, 1, 9), grid2d_stencil(5, 5, 1, 9));
        assert_ne!(grid2d_stencil(5, 5, 1, 9), grid2d_stencil(5, 5, 1, 10));
    }
}
