//! R-MAT recursive-matrix power-law graph generator (Chakrabarti et al.).
//!
//! Produces the skewed, scale-free degree distributions typical of the
//! social-network matrices in the paper's suite (ljournal-2008,
//! com-LiveJournal, soc-LiveJournal1, wikipedia-*). These matrices have
//! *low* compression ratios (1.76–2.67 in Table II) because the
//! neighborhoods of a row's neighbors overlap little.

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Parameters of an R-MAT generation run.
#[derive(Clone, Copy, Debug)]
pub struct RmatConfig {
    /// log2 of the number of vertices; the matrix is `2^scale` square.
    pub scale: u32,
    /// Number of edge samples (duplicates are merged, so the final nnz
    /// is somewhat lower).
    pub edges: usize,
    /// Quadrant probability a (top-left). Standard skewed setting:
    /// a=0.57, b=0.19, c=0.19, d=0.05.
    pub a: f64,
    /// Quadrant probability b (top-right).
    pub b: f64,
    /// Quadrant probability c (bottom-left).
    pub c: f64,
    /// If true, adds the transpose of every sampled edge (undirected
    /// graph / symmetric matrix).
    pub symmetric: bool,
}

impl RmatConfig {
    /// The standard skewed configuration (Graph500-like).
    pub fn skewed(scale: u32, edges: usize) -> Self {
        RmatConfig {
            scale,
            edges,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            symmetric: false,
        }
    }

    /// A milder skew, closer to the wikipedia matrices.
    pub fn mild(scale: u32, edges: usize) -> Self {
        RmatConfig {
            scale,
            edges,
            a: 0.45,
            b: 0.22,
            c: 0.22,
            symmetric: false,
        }
    }
}

/// Generates an R-MAT matrix. Values are uniform in `(0, 1]`; duplicate
/// edges are merged by [`CooMatrix::to_csr`] (values summed).
pub fn rmat(config: RmatConfig, seed: u64) -> CsrMatrix {
    let RmatConfig {
        scale,
        edges,
        a,
        b,
        c,
        symmetric,
    } = config;
    assert!(a + b + c <= 1.0 + 1e-9, "quadrant probabilities exceed 1");
    let n = 1usize << scale;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let cap = if symmetric { edges * 2 } else { edges };
    let mut coo = CooMatrix::with_capacity(n, n, cap);
    for _ in 0..edges {
        let (mut row, mut col) = (0usize, 0usize);
        for level in 0..scale {
            let half = 1usize << (scale - 1 - level);
            // Small per-level noise keeps the degree distribution from
            // being perfectly self-similar (standard "smoothing").
            let noise = 0.1 * (rng.gen::<f64>() - 0.5);
            let (pa, pb, pc) = (
                (a + noise * a).max(0.0),
                (b + noise * b).max(0.0),
                (c + noise * c).max(0.0),
            );
            let total = pa + pb + pc + (1.0 - a - b - c).max(0.0);
            let u: f64 = rng.gen::<f64>() * total;
            if u < pa {
                // top-left: nothing to add
            } else if u < pa + pb {
                col += half;
            } else if u < pa + pb + pc {
                row += half;
            } else {
                row += half;
                col += half;
            }
        }
        let v = rng.gen_range(f64::EPSILON..=1.0);
        coo.push(row, col, v).unwrap();
        if symmetric && row != col {
            coo.push(col, row, v).unwrap();
        }
    }
    coo.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::MatrixStats;

    #[test]
    fn deterministic_for_fixed_seed() {
        let cfg = RmatConfig::skewed(8, 2000);
        assert_eq!(rmat(cfg, 5), rmat(cfg, 5));
        assert_ne!(rmat(cfg, 5), rmat(cfg, 6));
    }

    #[test]
    fn shape_and_validity() {
        let m = rmat(RmatConfig::skewed(9, 5000), 11);
        assert_eq!(m.n_rows(), 512);
        assert_eq!(m.n_cols(), 512);
        assert!(m.nnz() > 3000, "most sampled edges should survive dedup");
        assert!(m.nnz() <= 5000);
        m.validate().unwrap();
    }

    #[test]
    fn skewed_config_produces_skewed_degrees() {
        let skewed = rmat(RmatConfig::skewed(10, 20_000), 3);
        let uniform = crate::gen::erdos::erdos_renyi(1024, 1024, 20_000.0 / (1024.0 * 1024.0), 3);
        let s_cv = MatrixStats::of(&skewed).row_nnz_cv;
        let u_cv = MatrixStats::of(&uniform).row_nnz_cv;
        assert!(
            s_cv > 2.0 * u_cv,
            "R-MAT should be much more skewed than Erdős–Rényi ({s_cv} vs {u_cv})"
        );
    }

    #[test]
    fn symmetric_flag_symmetrizes() {
        let mut cfg = RmatConfig::skewed(7, 1500);
        cfg.symmetric = true;
        let m = rmat(cfg, 21);
        let t = crate::ops::transpose(&m);
        assert_eq!(m, t);
    }
}
