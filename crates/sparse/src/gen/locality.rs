//! Power-law graphs with neighborhood locality — the `uk-2002`
//! (web-crawl) analogue.
//!
//! Web graphs combine skewed degrees with strong *locality*: pages link
//! mostly to pages of the same site, which lexicographic URL ordering
//! places nearby. The neighborhoods of a row's neighbors therefore
//! overlap heavily, giving `uk-2002` the second-highest compression
//! ratio in Table II (9.14) despite being a graph.

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Generates an `n x n` power-law graph with locality.
///
/// Each vertex `v` draws a degree from a Pareto-like distribution with
/// mean ≈ `avg_deg` (clamped to `max_deg`), then picks that many
/// neighbors from a window centered on `v` (wrapped at the ends),
/// biased toward the window center. The window half-width is
/// `max(spread, deg)` — big sites have proportionally more local pages
/// to link to — which keeps hub rows from collapsing under
/// deduplication. A small fraction `long_range` of edges instead go to
/// uniformly random vertices (cross-site links).
pub fn locality_graph(
    n: usize,
    avg_deg: f64,
    spread: usize,
    long_range: f64,
    seed: u64,
) -> CsrMatrix {
    assert!(n > 0, "graph must have at least one vertex");
    assert!(spread > 0, "spread must be positive");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut coo = CooMatrix::with_capacity(n, n, (n as f64 * avg_deg * 1.1) as usize + 16);
    // Pareto with alpha = 2 has mean 2*x_m; choose x_m = avg_deg / 2.
    let x_m = (avg_deg / 2.0).max(1.0);
    let max_deg = (avg_deg * 50.0) as usize;
    for v in 0..n {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        let deg = ((x_m / u.sqrt()) as usize).clamp(1, max_deg.max(1));
        let w = spread.max(deg);
        for _ in 0..deg {
            let target = if rng.gen::<f64>() < long_range {
                rng.gen_range(0..n)
            } else {
                // Triangular-ish bias toward the center of the window:
                // average of two uniforms concentrates near 0.
                let off = ((rng.gen::<f64>() + rng.gen::<f64>()) / 2.0 * (2 * w) as f64) as isize
                    - w as isize;
                let t = v as isize + off;
                t.rem_euclid(n as isize) as usize
            };
            coo.push(v, target, rng.gen_range(f64::EPSILON..=1.0))
                .unwrap();
        }
    }
    coo.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{MatrixStats, ProductStats};

    #[test]
    fn deterministic() {
        let a = locality_graph(300, 8.0, 20, 0.05, 4);
        let b = locality_graph(300, 8.0, 20, 0.05, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn mean_degree_near_target() {
        let m = locality_graph(2000, 10.0, 40, 0.05, 9);
        let mean = m.nnz() as f64 / 2000.0;
        // Dedup trims some edges; accept a broad band.
        assert!(mean > 5.0 && mean < 20.0, "mean degree {mean}");
        m.validate().unwrap();
    }

    #[test]
    fn degrees_are_skewed() {
        let m = locality_graph(2000, 10.0, 40, 0.05, 9);
        let s = MatrixStats::of(&m);
        assert!(
            s.max_row_nnz > 5 * s.avg_row_nnz as usize,
            "power-law tail expected"
        );
    }

    #[test]
    fn locality_raises_compression_ratio() {
        let local = locality_graph(8192, 16.0, 14, 0.01, 3);
        let cfg = crate::gen::rmat::RmatConfig::mild(13, local.nnz());
        let scattered = crate::gen::rmat::rmat(cfg, 3);
        let r_local = ProductStats::square(&local).compression_ratio;
        let r_scattered = ProductStats::square(&scattered).compression_ratio;
        assert!(
            r_local > 1.5 * r_scattered,
            "locality should compress much better: {r_local} vs {r_scattered}"
        );
    }
}
