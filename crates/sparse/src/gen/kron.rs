//! Exact Kronecker products — structure-controlled test matrices.
//!
//! `kron(A, B)` has a fully predictable product structure:
//! `kron(A,B) · kron(C,D) = kron(A·C, B·D)`, which makes it a useful
//! ground truth for SpGEMM tests.

use crate::csr::{ColId, CsrMatrix};

/// Computes the Kronecker product `A ⊗ B`.
///
/// # Panics
/// Panics if the result would exceed the `u32` column-id range.
pub fn kronecker(a: &CsrMatrix, b: &CsrMatrix) -> CsrMatrix {
    let n_rows = a.n_rows() * b.n_rows();
    let n_cols = a.n_cols() * b.n_cols();
    assert!(
        n_cols <= ColId::MAX as usize,
        "Kronecker product too wide for u32 column ids"
    );
    let nnz = a.nnz() * b.nnz();
    let mut offsets = Vec::with_capacity(n_rows + 1);
    let mut cols = Vec::with_capacity(nnz);
    let mut vals = Vec::with_capacity(nnz);
    offsets.push(0);
    for ar in 0..a.n_rows() {
        for br in 0..b.n_rows() {
            for (ac, av) in a.row_iter(ar) {
                let base = ac as usize * b.n_cols();
                for (bc, bv) in b.row_iter(br) {
                    cols.push((base + bc as usize) as ColId);
                    vals.push(av * bv);
                }
            }
            offsets.push(cols.len());
        }
    }
    CsrMatrix::from_parts_unchecked(n_rows, n_cols, offsets, cols, vals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::banded::tridiagonal;

    #[test]
    fn kron_with_identity_is_block_diagonal() {
        let i = CsrMatrix::identity(3);
        let t = tridiagonal(4);
        let k = kronecker(&i, &t);
        k.validate().unwrap();
        assert_eq!(k.n_rows(), 12);
        assert_eq!(k.nnz(), 3 * t.nnz());
        // Block (1,1) equals t shifted by 4.
        assert_eq!(k.get(4, 4), 2.0);
        assert_eq!(k.get(4, 5), -1.0);
        assert_eq!(k.get(4, 0), 0.0);
    }

    #[test]
    fn kron_nnz_is_product_of_nnz() {
        let a = tridiagonal(3);
        let b = tridiagonal(5);
        let k = kronecker(&a, &b);
        assert_eq!(k.nnz(), a.nnz() * b.nnz());
        assert_eq!(k.n_rows(), 15);
        assert_eq!(k.n_cols(), 15);
    }

    #[test]
    fn kron_value_identity() {
        // (A ⊗ B)[(i*p + k), (j*q + l)] = A[i,j] * B[k,l]
        let a = tridiagonal(3);
        let b = tridiagonal(4);
        let k = kronecker(&a, &b);
        for i in 0..3 {
            for j in 0..3 {
                for kk in 0..4 {
                    for l in 0..4 {
                        assert_eq!(k.get(i * 4 + kk, j * 4 + l), a.get(i, j) * b.get(kk, l));
                    }
                }
            }
        }
    }
}
