//! Erdős–Rényi uniform random sparse matrices.

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Generates an `n_rows x n_cols` matrix where each entry is non-zero
/// independently with probability `p`; values are uniform in `(0, 1]`.
///
/// Sampling is done per row with a binomial draw approximated by
/// `row_len = round(p * n_cols)`-free exact Bernoulli thinning when `p`
/// is large, or geometric skipping when `p` is small, so generation is
/// `O(nnz)` rather than `O(n_rows * n_cols)` for sparse settings.
pub fn erdos_renyi(n_rows: usize, n_cols: usize, p: f64, seed: u64) -> CsrMatrix {
    assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut coo = CooMatrix::with_capacity(
        n_rows,
        n_cols,
        ((n_rows * n_cols) as f64 * p * 1.1) as usize + 16,
    );
    if p == 0.0 || n_rows == 0 || n_cols == 0 {
        return coo.to_csr();
    }
    let log1mp = (1.0 - p).ln();
    for r in 0..n_rows {
        if p >= 0.3 {
            // Dense-ish rows: direct Bernoulli per column.
            for c in 0..n_cols {
                if rng.gen::<f64>() < p {
                    coo.push(r, c, rng.gen_range(f64::EPSILON..=1.0)).unwrap();
                }
            }
        } else {
            // Geometric skipping: distance to next success.
            let mut c = 0usize;
            loop {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                let skip = (u.ln() / log1mp).floor() as usize;
                c += skip;
                if c >= n_cols {
                    break;
                }
                coo.push(r, c, rng.gen_range(f64::EPSILON..=1.0)).unwrap();
                c += 1;
            }
        }
    }
    coo.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = erdos_renyi(50, 60, 0.05, 123);
        let b = erdos_renyi(50, 60, 0.05, 123);
        assert_eq!(a, b);
        let c = erdos_renyi(50, 60, 0.05, 124);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn density_is_close_to_p() {
        let n = 400;
        let p = 0.05;
        let m = erdos_renyi(n, n, p, 7);
        let density = m.nnz() as f64 / (n * n) as f64;
        assert!(
            (density - p).abs() < 0.01,
            "density {density} too far from {p}"
        );
        m.validate().unwrap();
    }

    #[test]
    fn dense_branch_density() {
        let n = 150;
        let p = 0.5;
        let m = erdos_renyi(n, n, p, 7);
        let density = m.nnz() as f64 / (n * n) as f64;
        assert!((density - p).abs() < 0.05);
        m.validate().unwrap();
    }

    #[test]
    fn degenerate_cases() {
        assert_eq!(erdos_renyi(10, 10, 0.0, 1).nnz(), 0);
        assert_eq!(erdos_renyi(0, 10, 0.5, 1).n_rows(), 0);
        let full = erdos_renyi(20, 20, 1.0, 1);
        assert_eq!(full.nnz(), 400);
    }

    #[test]
    fn values_are_nonzero_and_bounded() {
        let m = erdos_renyi(30, 30, 0.2, 99);
        for &v in m.values() {
            assert!(v > 0.0 && v <= 1.0);
        }
    }
}
