//! Row panels of `A`.
//!
//! "With the use of the CSR format (which stores each sparse row
//! contiguously), partitioning the matrix A to row panels is
//! straight-forward" (Section III-D). A row panel is just a row range;
//! panels can be materialized as views ([`CsrView`]) or owned matrices.

use crate::csr::CsrMatrix;
use crate::partition::{even_ranges, weighted_ranges};
use crate::view::CsrView;
use std::ops::Range;

/// A partition of a matrix's rows into contiguous panels.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RowPartition {
    ranges: Vec<Range<usize>>,
}

impl RowPartition {
    /// Splits `m` into `k` panels of (nearly) equal row count.
    pub fn even(m: &CsrMatrix, k: usize) -> Self {
        RowPartition {
            ranges: even_ranges(m.n_rows(), k),
        }
    }

    /// Splits `m` into at most `k` panels with approximately equal nnz.
    pub fn by_nnz(m: &CsrMatrix, k: usize) -> Self {
        let weights: Vec<u64> = (0..m.n_rows()).map(|r| m.row_nnz(r) as u64).collect();
        RowPartition {
            ranges: weighted_ranges(&weights, k),
        }
    }

    /// Splits `m` into at most `k` panels with approximately equal
    /// weight, for caller-supplied per-row weights (e.g. flops).
    pub fn by_weight(weights: &[u64], k: usize) -> Self {
        RowPartition {
            ranges: weighted_ranges(weights, k),
        }
    }

    /// Builds a partition from explicit ranges. Panics unless the ranges
    /// are contiguous, start at 0, and are non-overlapping.
    pub fn from_ranges(ranges: Vec<Range<usize>>) -> Self {
        let mut expect = 0usize;
        for r in &ranges {
            assert_eq!(r.start, expect, "row panels must be contiguous");
            assert!(r.end >= r.start, "row panel end before start");
            expect = r.end;
        }
        RowPartition { ranges }
    }

    /// Number of panels.
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// True if there are no panels.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// The row range of panel `i`.
    pub fn range(&self, i: usize) -> Range<usize> {
        self.ranges[i].clone()
    }

    /// All ranges.
    pub fn ranges(&self) -> &[Range<usize>] {
        &self.ranges
    }

    /// Borrowed view of panel `i` of `m`.
    pub fn view<'a>(&self, m: &'a CsrMatrix, i: usize) -> CsrView<'a> {
        let r = self.range(i);
        CsrView::rows(m, r.start, r.end)
    }

    /// Owned copy of panel `i` of `m`.
    pub fn extract(&self, m: &CsrMatrix, i: usize) -> CsrMatrix {
        let r = self.range(i);
        m.slice_rows(r.start, r.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::vstack;

    fn skewed() -> CsrMatrix {
        // Row 0 holds almost all nnz.
        let mut offsets = vec![0usize];
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        for c in 0..90u32 {
            cols.push(c);
            vals.push(1.0);
        }
        offsets.push(cols.len());
        for r in 1..10usize {
            cols.push(r as u32);
            vals.push(1.0);
            offsets.push(cols.len());
        }
        CsrMatrix::from_parts(10, 100, offsets, cols, vals).unwrap()
    }

    #[test]
    fn even_partition_covers_all_rows() {
        let m = skewed();
        let p = RowPartition::even(&m, 3);
        assert_eq!(p.len(), 3);
        let total: usize = p.ranges().iter().map(|r| r.len()).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn nnz_partition_isolates_heavy_row() {
        let m = skewed();
        let p = RowPartition::by_nnz(&m, 2);
        assert_eq!(p.range(0), 0..1, "heavy row gets its own panel");
    }

    #[test]
    fn extract_then_vstack_roundtrips() {
        let m = skewed();
        let p = RowPartition::even(&m, 4);
        let panels: Vec<CsrMatrix> = (0..p.len()).map(|i| p.extract(&m, i)).collect();
        let refs: Vec<&CsrMatrix> = panels.iter().collect();
        assert_eq!(vstack(&refs).unwrap(), m);
    }

    #[test]
    fn view_matches_extract() {
        let m = skewed();
        let p = RowPartition::even(&m, 3);
        for i in 0..p.len() {
            assert_eq!(p.view(&m, i).to_owned_matrix(), p.extract(&m, i));
        }
    }

    #[test]
    #[should_panic(expected = "contiguous")]
    fn from_ranges_rejects_gaps() {
        RowPartition::from_ranges(vec![0..2, 3..5]);
    }

    #[test]
    fn by_weight_balances_custom_weights() {
        let weights = vec![1u64, 1, 1, 100, 1, 1];
        let p = RowPartition::by_weight(&weights, 2);
        // The heavy row must not share a panel with everything else.
        let heavy_panel = p.ranges().iter().position(|r| r.contains(&3)).unwrap();
        let heavy_weight: u64 = weights[p.range(heavy_panel)].iter().sum();
        let other: u64 = 106 - heavy_weight;
        assert!(heavy_weight >= other, "{heavy_weight} vs {other}");
        assert_eq!(p.ranges().last().unwrap().end, 6);
    }
}
