//! Panel partitioning (paper Section III-D).
//!
//! The out-of-core framework partitions `A` into *row panels* and `B`
//! into *column panels*; the product of row panel `i` and column panel
//! `j` is the output chunk `C[i][j]` (Algorithm 3).
//!
//! * [`row`] — row panels are trivial for CSR (contiguous row ranges).
//! * [`col`] — column panels require a gather; this module implements
//!   the paper's naive rescan algorithm, its `col_offset` cursor
//!   optimization, and the prefix-sum parallel variant.

pub mod col;
pub mod row;

pub use col::{ColPanel, ColPartitioner};
pub use row::RowPartition;

use std::ops::Range;

/// Splits `n` items into `k` contiguous ranges whose sizes differ by at
/// most one. Panics if `k == 0` (unless `n == 0`, which yields no
/// ranges).
pub fn even_ranges(n: usize, k: usize) -> Vec<Range<usize>> {
    if n == 0 {
        return Vec::new();
    }
    assert!(k > 0, "cannot split {n} items into 0 panels");
    let k = k.min(n);
    let base = n / k;
    let extra = n % k;
    let mut out = Vec::with_capacity(k);
    let mut start = 0;
    for i in 0..k {
        let len = base + usize::from(i < extra);
        out.push(start..start + len);
        start += len;
    }
    debug_assert_eq!(start, n);
    out
}

/// Splits `0..weights.len()` into at most `k` contiguous ranges with
/// approximately equal total weight (greedy sweep against the ideal
/// cumulative target). Used to balance panels by nnz or flops rather
/// than raw row/column count.
pub fn weighted_ranges(weights: &[u64], k: usize) -> Vec<Range<usize>> {
    let n = weights.len();
    if n == 0 {
        return Vec::new();
    }
    assert!(k > 0, "cannot split {n} items into 0 panels");
    let k = k.min(n);
    let total: u64 = weights.iter().sum();
    if total == 0 {
        return even_ranges(n, k);
    }
    let mut out = Vec::with_capacity(k);
    let mut start = 0usize;
    let mut acc = 0u64;
    let mut consumed = 0u64;
    for panel in 0..k {
        let remaining_panels = (k - panel) as u64;
        let target = (total - consumed).div_ceil(remaining_panels);
        let mut end = start;
        while end < n && (acc < target || end == start) {
            // Leave at least one item per remaining panel.
            if n - end < k - panel {
                break;
            }
            acc += weights[end];
            end += 1;
        }
        out.push(start..end);
        consumed += acc;
        acc = 0;
        start = end;
        if start == n {
            break;
        }
    }
    if start < n {
        out.last_mut().unwrap().end = n;
    }
    out
}

/// [`weighted_ranges`] computed from an exclusive prefix sum of the
/// weights (`prefix[i]` = sum of the first `i` weights, so
/// `prefix.len() == n + 1`). Produces bit-identical ranges to the
/// greedy sweep but costs `O(k log n)` instead of `O(n)` per call,
/// which matters when the same weights are re-partitioned many times
/// (the planner's incremental grid search).
pub fn weighted_ranges_from_prefix(prefix: &[u64], k: usize) -> Vec<Range<usize>> {
    assert!(!prefix.is_empty(), "prefix sum must have n + 1 entries");
    let n = prefix.len() - 1;
    if n == 0 {
        return Vec::new();
    }
    assert!(k > 0, "cannot split {n} items into 0 panels");
    let k = k.min(n);
    let total = prefix[n] - prefix[0];
    if total == 0 {
        return even_ranges(n, k);
    }
    let mut out = Vec::with_capacity(k);
    let mut start = 0usize;
    for panel in 0..k {
        let remaining_panels = (k - panel) as u64;
        let target = (prefix[n] - prefix[start]).div_ceil(remaining_panels);
        // The greedy sweep consumes items while the panel weight is
        // below target, always takes at least one, and never takes an
        // item that would leave fewer than one per remaining panel.
        let want = prefix[start] + target;
        let searched = start + 1 + prefix[start + 1..=n].partition_point(|&p| p < want);
        let cap = n - (k - panel) + 1;
        let end = searched.min(cap);
        out.push(start..end);
        start = end;
        if start == n {
            break;
        }
    }
    if start < n {
        out.last_mut().unwrap().end = n;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_ranges_cover_exactly() {
        for n in [0usize, 1, 5, 16, 17] {
            for k in [1usize, 2, 3, 7] {
                let r = even_ranges(n, k);
                if n == 0 {
                    assert!(r.is_empty());
                    continue;
                }
                assert_eq!(r.len(), k.min(n));
                assert_eq!(r[0].start, 0);
                assert_eq!(r.last().unwrap().end, n);
                for w in r.windows(2) {
                    assert_eq!(w[0].end, w[1].start);
                }
                let sizes: Vec<_> = r.iter().map(|x| x.len()).collect();
                let min = sizes.iter().min().unwrap();
                let max = sizes.iter().max().unwrap();
                assert!(max - min <= 1);
            }
        }
    }

    #[test]
    fn weighted_ranges_balance_weight() {
        let w = [10u64, 1, 1, 1, 1, 10, 1, 1, 1, 1];
        let r = weighted_ranges(&w, 2);
        assert_eq!(r.len(), 2);
        let sum0: u64 = w[r[0].clone()].iter().sum();
        let sum1: u64 = w[r[1].clone()].iter().sum();
        // Ideal is 14/14; greedy should land near that.
        assert!(sum0.abs_diff(sum1) <= 6, "got {sum0} vs {sum1}");
        assert_eq!(r[0].start, 0);
        assert_eq!(r[1].end, w.len());
    }

    #[test]
    fn weighted_ranges_handles_zero_weights() {
        let w = [0u64; 8];
        let r = weighted_ranges(&w, 4);
        assert_eq!(r.len(), 4);
        assert_eq!(r.last().unwrap().end, 8);
    }

    #[test]
    fn weighted_ranges_more_panels_than_items() {
        let w = [5u64, 5];
        let r = weighted_ranges(&w, 10);
        assert_eq!(r.len(), 2);
        assert_eq!(r[0], 0..1);
        assert_eq!(r[1], 1..2);
    }

    #[test]
    fn weighted_ranges_single_heavy_item() {
        let w = [100u64, 1, 1, 1];
        let r = weighted_ranges(&w, 3);
        assert_eq!(r.iter().map(|x| x.len()).sum::<usize>(), 4);
        assert_eq!(r[0], 0..1, "heavy head takes its own panel");
    }

    #[test]
    fn prefix_variant_matches_greedy_sweep() {
        // Deterministic pseudo-random weights with heavy items, zero
        // runs, and skew — the shapes that exercise the greedy guards.
        let mut state = 0x9e37_79b9_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for n in [1usize, 2, 3, 7, 16, 100, 257] {
            let mut weights = vec![0u64; n];
            for w in weights.iter_mut() {
                let r = next();
                *w = match r % 5 {
                    0 => 0,
                    1 => r % 7,
                    2 => r % 1000,
                    _ => r % 50,
                };
            }
            let mut prefix = Vec::with_capacity(n + 1);
            prefix.push(0u64);
            for &w in &weights {
                prefix.push(prefix.last().unwrap() + w);
            }
            for k in [1usize, 2, 3, 5, 8, n, 2 * n] {
                assert_eq!(
                    weighted_ranges(&weights, k),
                    weighted_ranges_from_prefix(&prefix, k),
                    "n={n} k={k} weights={weights:?}"
                );
            }
        }
        // All-zero weights fall back to even splitting in both.
        let prefix = vec![0u64; 9];
        assert_eq!(
            weighted_ranges(&[0; 8], 3),
            weighted_ranges_from_prefix(&prefix, 3)
        );
    }
}
