//! Column panels of `B` (paper Section III-D).
//!
//! CSR cannot address a column range directly, so building column panels
//! is a gather problem. The paper describes:
//!
//! 1. a **naive** algorithm — for every panel, rescan every row from
//!    `row_offset[r]` and pick out the entries whose column falls in
//!    `[start_col, end_col)`; cost grows with `panels × nnz`;
//! 2. an optimized algorithm keeping a **`col_offset` cursor** per row:
//!    because columns are sorted within a row, processing panels in
//!    order lets each row resume scanning where the previous panel
//!    stopped — total cost `O(nnz + rows × panels)`;
//! 3. a **prefix-sum parallel** variant ("we also parallelize the
//!    partitioning in a prefix sum fashion"): per panel, rows are
//!    binary-searched in parallel for the panel boundaries, a prefix
//!    sum turns per-row counts into write offsets, and rows are filled
//!    into disjoint output slices in parallel;
//! 4. a **parallel cursor** variant combining 2 and 3 — rows are swept
//!    in parallel, each with its own forward cursor across all panels
//!    (every entry compared once, no binary searches), then panels are
//!    materialized with the same prefix-sum + disjoint-slice fill.
//!
//! All variants produce identical [`ColPanel`]s; tests assert it and
//! the bench crate ablates their cost.

use crate::csr::{ColId, CsrMatrix};
use crate::partition::{even_ranges, weighted_ranges};
use rayon::prelude::*;
use std::ops::Range;

/// One column panel of `B`: all rows, columns `col_range`, with column
/// ids re-based to the panel (`local = global - col_range.start`).
#[derive(Clone, Debug, PartialEq)]
pub struct ColPanel {
    /// Global column range this panel covers.
    pub col_range: Range<usize>,
    /// Panel contents; `n_cols == col_range.len()`.
    pub matrix: CsrMatrix,
}

impl ColPanel {
    /// Panel width in columns.
    pub fn width(&self) -> usize {
        self.col_range.len()
    }
}

/// Strategy for building column panels.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ColPartitioner {
    /// Full rescan of every row for every panel (paper's baseline).
    Naive,
    /// Sequential single pass with per-row `col_offset` cursors.
    Cursor,
    /// Parallel two-stage (binary search + prefix sum + parallel fill).
    ParallelPrefixSum,
    /// Parallel per-row cursor sweep (every entry compared once, like
    /// `Cursor`) feeding the same prefix-sum + parallel fill.
    ParallelCursor,
    /// Convert to CSC once (`O(nnz)`), then slice each panel out of
    /// the column-major layout — the format-conversion alternative to
    /// the paper's in-place algorithms.
    ViaCsc,
}

impl ColPartitioner {
    /// Partitions `b` into the given column ranges.
    ///
    /// `ranges` must be contiguous, start at column 0, and end at
    /// `b.n_cols()`.
    pub fn partition(&self, b: &CsrMatrix, ranges: &[Range<usize>]) -> Vec<ColPanel> {
        validate_ranges(b, ranges);
        match self {
            ColPartitioner::Naive => naive(b, ranges),
            ColPartitioner::Cursor => cursor(b, ranges),
            ColPartitioner::ParallelPrefixSum => parallel_prefix_sum(b, ranges),
            ColPartitioner::ParallelCursor => parallel_cursor(b, ranges),
            ColPartitioner::ViaCsc => via_csc(b, ranges),
        }
    }
}

fn validate_ranges(b: &CsrMatrix, ranges: &[Range<usize>]) {
    if b.n_cols() == 0 && ranges.is_empty() {
        return;
    }
    assert!(!ranges.is_empty(), "at least one column range required");
    assert_eq!(ranges[0].start, 0, "column ranges must start at 0");
    assert_eq!(
        ranges.last().unwrap().end,
        b.n_cols(),
        "column ranges must cover all columns"
    );
    for w in ranges.windows(2) {
        assert_eq!(w[0].end, w[1].start, "column ranges must be contiguous");
    }
}

/// Equal-width column ranges for `k` panels.
pub fn even_col_ranges(b: &CsrMatrix, k: usize) -> Vec<Range<usize>> {
    even_ranges(b.n_cols(), k)
}

/// Column ranges balanced by per-column nnz (so panels carry similar
/// amounts of `B` data).
pub fn nnz_balanced_col_ranges(b: &CsrMatrix, k: usize) -> Vec<Range<usize>> {
    let mut col_nnz = vec![0u64; b.n_cols()];
    for &c in b.col_ids() {
        col_nnz[c as usize] += 1;
    }
    weighted_ranges(&col_nnz, k)
}

/// Paper's "simplistic implementation": per panel, rescan all rows.
fn naive(b: &CsrMatrix, ranges: &[Range<usize>]) -> Vec<ColPanel> {
    ranges
        .iter()
        .map(|range| {
            let (start, end) = (range.start as ColId, range.end as ColId);
            let mut offsets = Vec::with_capacity(b.n_rows() + 1);
            let mut cols: Vec<ColId> = Vec::new();
            let mut vals: Vec<f64> = Vec::new();
            offsets.push(0);
            for r in 0..b.n_rows() {
                for (c, v) in b.row_iter(r) {
                    if c >= start && c < end {
                        cols.push(c - start);
                        vals.push(v);
                    }
                }
                offsets.push(cols.len());
            }
            ColPanel {
                col_range: range.clone(),
                matrix: CsrMatrix::from_parts_unchecked(
                    b.n_rows(),
                    range.len(),
                    offsets,
                    cols,
                    vals,
                ),
            }
        })
        .collect()
}

/// Paper's optimized algorithm: per-row `col_offset` cursors advanced
/// across panels, so every entry of `B` is touched once per stage.
fn cursor(b: &CsrMatrix, ranges: &[Range<usize>]) -> Vec<ColPanel> {
    let n_rows = b.n_rows();
    let row_offsets = b.row_offsets();
    let col_ids = b.col_ids();
    let values = b.values();

    // Stage 1: count entries per (panel, row) with one cursor sweep.
    let mut col_offset: Vec<usize> = row_offsets[..n_rows].to_vec();
    let mut panel_row_counts: Vec<Vec<usize>> = Vec::with_capacity(ranges.len());
    for range in ranges {
        let end = range.end as ColId;
        let mut counts = Vec::with_capacity(n_rows);
        for r in 0..n_rows {
            let row_end = row_offsets[r + 1];
            let from = col_offset[r];
            let mut i = from;
            while i < row_end && col_ids[i] < end {
                i += 1;
            }
            counts.push(i - from);
            col_offset[r] = i;
        }
        panel_row_counts.push(counts);
    }

    // Stage 2: allocate each panel exactly and fill with a second sweep.
    let mut col_offset: Vec<usize> = row_offsets[..n_rows].to_vec();
    ranges
        .iter()
        .zip(panel_row_counts)
        .map(|(range, counts)| {
            let start = range.start as ColId;
            let nnz: usize = counts.iter().sum();
            let mut offsets = Vec::with_capacity(n_rows + 1);
            offsets.push(0);
            let mut cols = Vec::with_capacity(nnz);
            let mut vals = Vec::with_capacity(nnz);
            for (r, &count) in counts.iter().enumerate() {
                let from = col_offset[r];
                for i in from..from + count {
                    cols.push(col_ids[i] - start);
                    vals.push(values[i]);
                }
                col_offset[r] = from + count;
                offsets.push(cols.len());
            }
            ColPanel {
                col_range: range.clone(),
                matrix: CsrMatrix::from_parts_unchecked(n_rows, range.len(), offsets, cols, vals),
            }
        })
        .collect()
}

/// Parallel two-stage partitioner.
///
/// Per panel: (1) rows are binary-searched in parallel for the positions
/// of `start_col` and `end_col`, giving per-row counts; (2) an exclusive
/// prefix sum converts counts to write offsets; (3) the output arrays
/// are split into disjoint per-row slices and filled in parallel.
fn parallel_prefix_sum(b: &CsrMatrix, ranges: &[Range<usize>]) -> Vec<ColPanel> {
    let n_rows = b.n_rows();
    let row_offsets = b.row_offsets();
    let col_ids = b.col_ids();

    ranges
        .iter()
        .map(|range| {
            let (start, end) = (range.start as ColId, range.end as ColId);
            // Stage 1: per-row boundary positions via binary search.
            let bounds: Vec<(usize, usize)> = (0..n_rows)
                .into_par_iter()
                .map(|r| {
                    let row = &col_ids[row_offsets[r]..row_offsets[r + 1]];
                    let lo = row.partition_point(|&c| c < start);
                    let hi = row.partition_point(|&c| c < end);
                    (row_offsets[r] + lo, row_offsets[r] + hi)
                })
                .collect();
            fill_panel(b, range, &bounds)
        })
        .collect()
}

/// Parallel cursor partitioner: one forward cursor per row, advanced
/// across all panels in a single sweep (rows in parallel), so every
/// entry of `B` is compared exactly once — the work profile of
/// [`ColPartitioner::Cursor`] with the parallelism of
/// [`ColPartitioner::ParallelPrefixSum`]. The sweep yields the same
/// per-row source spans the binary searches would; panels are then
/// materialized with the shared prefix-sum fill.
fn parallel_cursor(b: &CsrMatrix, ranges: &[Range<usize>]) -> Vec<ColPanel> {
    let n_rows = b.n_rows();
    let row_offsets = b.row_offsets();
    let col_ids = b.col_ids();
    let k = ranges.len();
    let panel_ends: Vec<ColId> = ranges.iter().map(|range| range.end as ColId).collect();

    // Stage 1: row-major (row, panel) source spans from parallel
    // cursor sweeps, in blocks to amortize the per-task output vector.
    const BLOCK: usize = 256;
    let spans: Vec<(usize, usize)> = (0..n_rows.div_ceil(BLOCK))
        .into_par_iter()
        .flat_map_iter(|block| {
            let lo = block * BLOCK;
            let hi = (lo + BLOCK).min(n_rows);
            let mut out = Vec::with_capacity((hi - lo) * k);
            for r in lo..hi {
                let row_end = row_offsets[r + 1];
                let mut i = row_offsets[r];
                for &end in &panel_ends {
                    let from = i;
                    while i < row_end && col_ids[i] < end {
                        i += 1;
                    }
                    out.push((from, i));
                }
            }
            out
        })
        .collect();

    // Stage 2: materialize each panel from its span column.
    ranges
        .iter()
        .enumerate()
        .map(|(p, range)| {
            let bounds: Vec<(usize, usize)> = (0..n_rows).map(|r| spans[r * k + p]).collect();
            fill_panel(b, range, &bounds)
        })
        .collect()
}

/// Materializes one column panel given per-row source spans
/// `[lo, hi)` into `b`'s entry arrays: an exclusive prefix sum turns
/// span lengths into write offsets, and rows are filled into disjoint
/// output slices in parallel.
fn fill_panel(b: &CsrMatrix, range: &Range<usize>, bounds: &[(usize, usize)]) -> ColPanel {
    let n_rows = b.n_rows();
    let col_ids = b.col_ids();
    let values = b.values();
    let start = range.start as ColId;
    let mut offsets = Vec::with_capacity(n_rows + 1);
    offsets.push(0usize);
    for &(lo, hi) in bounds {
        offsets.push(offsets.last().unwrap() + (hi - lo));
    }
    let nnz = *offsets.last().unwrap();
    let mut cols = vec![0 as ColId; nnz];
    let mut vals = vec![0.0f64; nnz];
    let mut col_slices: Vec<&mut [ColId]> = Vec::with_capacity(n_rows);
    let mut val_slices: Vec<&mut [f64]> = Vec::with_capacity(n_rows);
    {
        let mut rest_c: &mut [ColId] = &mut cols;
        let mut rest_v: &mut [f64] = &mut vals;
        for r in 0..n_rows {
            let len = offsets[r + 1] - offsets[r];
            let (head_c, tail_c) = rest_c.split_at_mut(len);
            let (head_v, tail_v) = rest_v.split_at_mut(len);
            col_slices.push(head_c);
            val_slices.push(head_v);
            rest_c = tail_c;
            rest_v = tail_v;
        }
    }
    col_slices
        .par_iter_mut()
        .zip(val_slices.par_iter_mut())
        .zip(bounds.par_iter())
        .for_each(|((cdst, vdst), &(lo, hi))| {
            for (k, i) in (lo..hi).enumerate() {
                cdst[k] = col_ids[i] - start;
                vdst[k] = values[i];
            }
        });
    ColPanel {
        col_range: range.clone(),
        matrix: CsrMatrix::from_parts_unchecked(n_rows, range.len(), offsets, cols, vals),
    }
}

/// CSC-based partitioner: one conversion, then contiguous slices.
fn via_csc(b: &CsrMatrix, ranges: &[Range<usize>]) -> Vec<ColPanel> {
    let csc = crate::csc::CscMatrix::from_csr(b);
    ranges
        .iter()
        .map(|range| ColPanel {
            col_range: range.clone(),
            matrix: csc.slice_cols_to_csr(range.start, range.end),
        })
        .collect()
}

/// Re-assembles column panels back into the original matrix (test and
/// verification helper; inverse of any [`ColPartitioner`]).
pub fn reassemble(panels: &[ColPanel]) -> CsrMatrix {
    if panels.is_empty() {
        return CsrMatrix::zeros(0, 0);
    }
    let n_rows = panels[0].matrix.n_rows();
    let n_cols = panels.last().unwrap().col_range.end;
    let nnz: usize = panels.iter().map(|p| p.matrix.nnz()).sum();
    let mut offsets = Vec::with_capacity(n_rows + 1);
    let mut cols = Vec::with_capacity(nnz);
    let mut vals = Vec::with_capacity(nnz);
    offsets.push(0);
    for r in 0..n_rows {
        for p in panels {
            let base = p.col_range.start as ColId;
            for (c, v) in p.matrix.row_iter(r) {
                cols.push(base + c);
                vals.push(v);
            }
        }
        offsets.push(cols.len());
    }
    CsrMatrix::from_parts_unchecked(n_rows, n_cols, offsets, cols, vals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::erdos::erdos_renyi;

    fn example() -> CsrMatrix {
        CsrMatrix::from_parts(
            4,
            8,
            vec![0, 3, 4, 7, 8],
            vec![0, 3, 6, 2, 1, 4, 7, 5],
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0],
        )
        .unwrap()
    }

    fn all_strategies() -> [ColPartitioner; 5] {
        [
            ColPartitioner::Naive,
            ColPartitioner::Cursor,
            ColPartitioner::ParallelPrefixSum,
            ColPartitioner::ParallelCursor,
            ColPartitioner::ViaCsc,
        ]
    }

    #[test]
    fn panels_localize_columns() {
        let b = example();
        let ranges = even_col_ranges(&b, 2);
        for strat in all_strategies() {
            let panels = strat.partition(&b, &ranges);
            assert_eq!(panels.len(), 2);
            assert_eq!(panels[0].col_range, 0..4);
            assert_eq!(panels[1].col_range, 4..8);
            // Row 0 global cols {0,3,6}: panel0 gets {0,3}, panel1 gets {2}.
            assert_eq!(panels[0].matrix.row_cols(0), &[0, 3]);
            assert_eq!(panels[1].matrix.row_cols(0), &[2]);
            assert_eq!(panels[1].matrix.row_values(0), &[3.0]);
            for p in &panels {
                p.matrix.validate().unwrap();
            }
        }
    }

    #[test]
    fn strategies_agree_and_roundtrip() {
        let b = erdos_renyi(60, 80, 0.07, 42);
        for k in [1usize, 2, 3, 7, 80] {
            let ranges = even_col_ranges(&b, k);
            let reference = ColPartitioner::Naive.partition(&b, &ranges);
            for strat in [
                ColPartitioner::Cursor,
                ColPartitioner::ParallelPrefixSum,
                ColPartitioner::ParallelCursor,
                ColPartitioner::ViaCsc,
            ] {
                let panels = strat.partition(&b, &ranges);
                assert_eq!(panels, reference, "strategy {strat:?} diverged at k={k}");
            }
            assert_eq!(reassemble(&reference), b, "roundtrip failed at k={k}");
        }
    }

    #[test]
    fn nnz_balanced_ranges_distribute_load() {
        let b = erdos_renyi(100, 100, 0.1, 7);
        let ranges = nnz_balanced_col_ranges(&b, 4);
        assert_eq!(ranges.last().unwrap().end, 100);
        let panels = ColPartitioner::Cursor.partition(&b, &ranges);
        let sizes: Vec<usize> = panels.iter().map(|p| p.matrix.nnz()).collect();
        let total: usize = sizes.iter().sum();
        assert_eq!(total, b.nnz());
        let max = *sizes.iter().max().unwrap();
        assert!(
            max <= total / 2,
            "one panel holds most of the nnz: {sizes:?}"
        );
    }

    #[test]
    fn single_panel_is_whole_matrix() {
        let b = example();
        let panels = ColPartitioner::Cursor.partition(&b, std::slice::from_ref(&(0..8)));
        assert_eq!(panels.len(), 1);
        assert_eq!(panels[0].matrix, b);
    }

    #[test]
    fn empty_matrix_partitions() {
        let b = CsrMatrix::zeros(3, 6);
        for strat in all_strategies() {
            let panels = strat.partition(&b, &even_col_ranges(&b, 2));
            assert_eq!(panels.len(), 2);
            assert_eq!(panels[0].matrix.nnz(), 0);
            assert_eq!(reassemble(&panels), b);
        }
    }

    #[test]
    #[should_panic(expected = "cover all columns")]
    fn rejects_incomplete_ranges() {
        let b = example();
        ColPartitioner::Cursor.partition(&b, std::slice::from_ref(&(0..4)));
    }
}
