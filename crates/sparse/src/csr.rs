//! Compressed sparse row matrix (Section II-A of the paper).

use crate::{Result, SparseError};
use serde::{Deserialize, Serialize};

/// Column index type.
///
/// The paper notes (Section III-C) that MKL is limited to 32-bit indices
/// in `row_offsets` *and* `col_ids`; we keep `u32` column ids (a matrix
/// never has more than 2³² columns in this study) but use full `usize`
/// row offsets so the total nnz is unbounded — exactly the combination
/// the paper's own implementation needs for large matrices.
pub type ColId = u32;

/// A sparse matrix in compressed sparse row format.
///
/// Invariants (checked by [`CsrMatrix::validate`], and upheld by every
/// constructor in this crate):
///
/// * `row_offsets.len() == n_rows + 1`, `row_offsets[0] == 0`,
///   `row_offsets` is non-decreasing and ends at `col_ids.len()`.
/// * `col_ids.len() == values.len()`.
/// * within each row, column ids are strictly increasing (sorted, no
///   duplicates) — the paper sorts column ids per row (Section II-A).
/// * every column id is `< n_cols`.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CsrMatrix {
    n_rows: usize,
    n_cols: usize,
    row_offsets: Vec<usize>,
    col_ids: Vec<ColId>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Creates an empty matrix with the given shape (all zeros).
    pub fn zeros(n_rows: usize, n_cols: usize) -> Self {
        CsrMatrix {
            n_rows,
            n_cols,
            row_offsets: vec![0; n_rows + 1],
            col_ids: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Creates an identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        CsrMatrix {
            n_rows: n,
            n_cols: n,
            row_offsets: (0..=n).collect(),
            col_ids: (0..n as ColId).collect(),
            values: vec![1.0; n],
        }
    }

    /// Builds a CSR matrix from raw parts, validating every invariant.
    pub fn from_parts(
        n_rows: usize,
        n_cols: usize,
        row_offsets: Vec<usize>,
        col_ids: Vec<ColId>,
        values: Vec<f64>,
    ) -> Result<Self> {
        let m = CsrMatrix {
            n_rows,
            n_cols,
            row_offsets,
            col_ids,
            values,
        };
        m.validate()?;
        Ok(m)
    }

    /// Builds a CSR matrix from raw parts without validation.
    ///
    /// Not `unsafe` in the memory-safety sense (all accesses are checked),
    /// but violating the CSR invariants produces garbage results
    /// downstream. Intended for hot paths that construct provably valid
    /// structures; debug builds still validate.
    pub fn from_parts_unchecked(
        n_rows: usize,
        n_cols: usize,
        row_offsets: Vec<usize>,
        col_ids: Vec<ColId>,
        values: Vec<f64>,
    ) -> Self {
        let m = CsrMatrix {
            n_rows,
            n_cols,
            row_offsets,
            col_ids,
            values,
        };
        debug_assert!(
            m.validate().is_ok(),
            "invalid CSR passed to from_parts_unchecked"
        );
        m
    }

    /// Builds a dense `n_rows x n_cols` matrix from a row-major slice,
    /// dropping exact zeros.
    pub fn from_dense(n_rows: usize, n_cols: usize, data: &[f64]) -> Result<Self> {
        if data.len() != n_rows * n_cols {
            return Err(SparseError::InvalidCsr(format!(
                "dense data length {} != {}x{}",
                data.len(),
                n_rows,
                n_cols
            )));
        }
        if n_cols > ColId::MAX as usize {
            return Err(SparseError::TooManyColumns(n_cols));
        }
        let mut row_offsets = Vec::with_capacity(n_rows + 1);
        let mut col_ids = Vec::new();
        let mut values = Vec::new();
        row_offsets.push(0);
        for r in 0..n_rows {
            for c in 0..n_cols {
                let v = data[r * n_cols + c];
                if v != 0.0 {
                    col_ids.push(c as ColId);
                    values.push(v);
                }
            }
            row_offsets.push(col_ids.len());
        }
        Ok(CsrMatrix {
            n_rows,
            n_cols,
            row_offsets,
            col_ids,
            values,
        })
    }

    /// Number of rows.
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    #[inline]
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Number of stored (structurally non-zero) elements.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.col_ids.len()
    }

    /// The `row_offsets` array (`n_rows + 1` entries).
    #[inline]
    pub fn row_offsets(&self) -> &[usize] {
        &self.row_offsets
    }

    /// The `col_ids` array, row by row.
    #[inline]
    pub fn col_ids(&self) -> &[ColId] {
        &self.col_ids
    }

    /// The `data` array of the paper (stored values, row by row).
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable access to the stored values (structure stays fixed).
    #[inline]
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Number of stored elements in row `r`.
    #[inline]
    pub fn row_nnz(&self, r: usize) -> usize {
        self.row_offsets[r + 1] - self.row_offsets[r]
    }

    /// Column ids of row `r`.
    #[inline]
    pub fn row_cols(&self, r: usize) -> &[ColId] {
        &self.col_ids[self.row_offsets[r]..self.row_offsets[r + 1]]
    }

    /// Values of row `r`.
    #[inline]
    pub fn row_values(&self, r: usize) -> &[f64] {
        &self.values[self.row_offsets[r]..self.row_offsets[r + 1]]
    }

    /// Iterator over `(col, value)` pairs of row `r`.
    #[inline]
    pub fn row_iter(&self, r: usize) -> impl Iterator<Item = (ColId, f64)> + '_ {
        self.row_cols(r)
            .iter()
            .copied()
            .zip(self.row_values(r).iter().copied())
    }

    /// Iterator over all `(row, col, value)` triplets in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, ColId, f64)> + '_ {
        (0..self.n_rows).flat_map(move |r| self.row_iter(r).map(move |(c, v)| (r, c, v)))
    }

    /// Value at `(row, col)`, or 0.0 if the entry is structurally zero.
    ///
    /// Binary search over the sorted row — `O(log row_nnz)`.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(
            row < self.n_rows && col < self.n_cols,
            "index out of bounds"
        );
        let cols = self.row_cols(row);
        match cols.binary_search(&(col as ColId)) {
            Ok(i) => self.row_values(row)[i],
            Err(_) => 0.0,
        }
    }

    /// Checks all CSR invariants; returns a descriptive error on failure.
    pub fn validate(&self) -> Result<()> {
        if self.n_cols > ColId::MAX as usize {
            return Err(SparseError::TooManyColumns(self.n_cols));
        }
        if self.row_offsets.len() != self.n_rows + 1 {
            return Err(SparseError::InvalidCsr(format!(
                "row_offsets length {} != n_rows + 1 = {}",
                self.row_offsets.len(),
                self.n_rows + 1
            )));
        }
        if self.row_offsets[0] != 0 {
            return Err(SparseError::InvalidCsr("row_offsets[0] != 0".into()));
        }
        if *self.row_offsets.last().unwrap() != self.col_ids.len() {
            return Err(SparseError::InvalidCsr(format!(
                "row_offsets ends at {} but nnz is {}",
                self.row_offsets.last().unwrap(),
                self.col_ids.len()
            )));
        }
        if self.col_ids.len() != self.values.len() {
            return Err(SparseError::InvalidCsr(format!(
                "col_ids length {} != values length {}",
                self.col_ids.len(),
                self.values.len()
            )));
        }
        for r in 0..self.n_rows {
            let (lo, hi) = (self.row_offsets[r], self.row_offsets[r + 1]);
            if lo > hi {
                return Err(SparseError::InvalidCsr(format!(
                    "row_offsets decreasing at row {r}"
                )));
            }
            let cols = &self.col_ids[lo..hi];
            for w in cols.windows(2) {
                if w[0] >= w[1] {
                    return Err(SparseError::InvalidCsr(format!(
                        "row {r} column ids not strictly increasing ({} then {})",
                        w[0], w[1]
                    )));
                }
            }
            if let Some(&last) = cols.last() {
                if last as usize >= self.n_cols {
                    return Err(SparseError::IndexOutOfBounds {
                        row: r,
                        col: last as usize,
                        n_rows: self.n_rows,
                        n_cols: self.n_cols,
                    });
                }
            }
        }
        Ok(())
    }

    /// Total heap bytes used by the three CSR arrays.
    ///
    /// This is the quantity device-memory planning reasons about: the
    /// paper's planner must fit panels of `A`, `B`, and the output chunk
    /// into the 16 GB of a V100 (Table I).
    pub fn storage_bytes(&self) -> usize {
        self.row_offsets.len() * std::mem::size_of::<usize>()
            + self.col_ids.len() * std::mem::size_of::<ColId>()
            + self.values.len() * std::mem::size_of::<f64>()
    }

    /// Extracts rows `[start, end)` as an owned CSR matrix with the same
    /// column dimension (a *row panel*, Section III-A).
    pub fn slice_rows(&self, start: usize, end: usize) -> CsrMatrix {
        assert!(
            start <= end && end <= self.n_rows,
            "row slice out of bounds"
        );
        let lo = self.row_offsets[start];
        let hi = self.row_offsets[end];
        let row_offsets = self.row_offsets[start..=end]
            .iter()
            .map(|&o| o - lo)
            .collect();
        CsrMatrix {
            n_rows: end - start,
            n_cols: self.n_cols,
            row_offsets,
            col_ids: self.col_ids[lo..hi].to_vec(),
            values: self.values[lo..hi].to_vec(),
        }
    }

    /// Consumes the matrix, returning `(n_rows, n_cols, row_offsets,
    /// col_ids, values)`.
    pub fn into_parts(self) -> (usize, usize, Vec<usize>, Vec<ColId>, Vec<f64>) {
        (
            self.n_rows,
            self.n_cols,
            self.row_offsets,
            self.col_ids,
            self.values,
        )
    }

    /// Compares two matrices for equal structure and values within
    /// `rel_tol` relative tolerance (used to verify SpGEMM executors
    /// against the sequential reference despite different accumulation
    /// orders).
    pub fn approx_eq(&self, other: &CsrMatrix, rel_tol: f64) -> bool {
        if self.n_rows != other.n_rows
            || self.n_cols != other.n_cols
            || self.row_offsets != other.row_offsets
            || self.col_ids != other.col_ids
        {
            return false;
        }
        self.values.iter().zip(&other.values).all(|(&a, &b)| {
            let scale = a.abs().max(b.abs()).max(1.0);
            (a - b).abs() <= rel_tol * scale
        })
    }

    /// Drops stored entries whose absolute value is below `eps`,
    /// compacting the structure.
    pub fn prune(&self, eps: f64) -> CsrMatrix {
        let mut row_offsets = Vec::with_capacity(self.n_rows + 1);
        let mut col_ids = Vec::new();
        let mut values = Vec::new();
        row_offsets.push(0);
        for r in 0..self.n_rows {
            for (c, v) in self.row_iter(r) {
                if v.abs() > eps {
                    col_ids.push(c);
                    values.push(v);
                }
            }
            row_offsets.push(col_ids.len());
        }
        CsrMatrix {
            n_rows: self.n_rows,
            n_cols: self.n_cols,
            row_offsets,
            col_ids,
            values,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 4x4 example in the spirit of the paper's Figure 1.
    pub(crate) fn example() -> CsrMatrix {
        // [ 1 0 2 0 ]
        // [ 0 3 0 0 ]
        // [ 4 0 0 5 ]
        // [ 0 0 6 0 ]
        CsrMatrix::from_parts(
            4,
            4,
            vec![0, 2, 3, 5, 6],
            vec![0, 2, 1, 0, 3, 2],
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
        )
        .unwrap()
    }

    #[test]
    fn zeros_has_valid_structure() {
        let m = CsrMatrix::zeros(5, 7);
        assert_eq!(m.n_rows(), 5);
        assert_eq!(m.n_cols(), 7);
        assert_eq!(m.nnz(), 0);
        m.validate().unwrap();
        for r in 0..5 {
            assert_eq!(m.row_nnz(r), 0);
        }
    }

    #[test]
    fn identity_roundtrip() {
        let m = CsrMatrix::identity(6);
        m.validate().unwrap();
        assert_eq!(m.nnz(), 6);
        for r in 0..6 {
            assert_eq!(m.get(r, r), 1.0);
            assert_eq!(m.get(r, (r + 1) % 6), if 6 == 1 { 1.0 } else { 0.0 });
        }
    }

    #[test]
    fn example_accessors() {
        let m = example();
        assert_eq!(m.nnz(), 6);
        assert_eq!(m.row_nnz(0), 2);
        assert_eq!(m.row_cols(2), &[0, 3]);
        assert_eq!(m.row_values(2), &[4.0, 5.0]);
        assert_eq!(m.get(0, 2), 2.0);
        assert_eq!(m.get(0, 1), 0.0);
        let trips: Vec<_> = m.iter().collect();
        assert_eq!(trips.len(), 6);
        assert_eq!(trips[0], (0, 0, 1.0));
        assert_eq!(trips[5], (3, 2, 6.0));
    }

    #[test]
    fn from_dense_drops_zeros() {
        #[rustfmt::skip]
        let d = [
            1.0, 0.0,
            0.0, 2.0,
        ];
        let m = CsrMatrix::from_dense(2, 2, &d).unwrap();
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(1, 1), 2.0);
    }

    #[test]
    fn from_dense_rejects_wrong_len() {
        assert!(CsrMatrix::from_dense(2, 2, &[1.0; 3]).is_err());
    }

    #[test]
    fn validate_rejects_unsorted_columns() {
        let r = CsrMatrix::from_parts(1, 4, vec![0, 2], vec![2, 0], vec![1.0, 2.0]);
        assert!(matches!(r, Err(SparseError::InvalidCsr(_))));
    }

    #[test]
    fn validate_rejects_duplicate_columns() {
        let r = CsrMatrix::from_parts(1, 4, vec![0, 2], vec![1, 1], vec![1.0, 2.0]);
        assert!(matches!(r, Err(SparseError::InvalidCsr(_))));
    }

    #[test]
    fn validate_rejects_column_out_of_range() {
        let r = CsrMatrix::from_parts(1, 2, vec![0, 1], vec![5], vec![1.0]);
        assert!(matches!(r, Err(SparseError::IndexOutOfBounds { .. })));
    }

    #[test]
    fn validate_rejects_bad_offsets() {
        let r = CsrMatrix::from_parts(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 2.0]);
        assert!(r.is_err());
        let r = CsrMatrix::from_parts(2, 2, vec![1, 1, 2], vec![0, 1], vec![1.0, 2.0]);
        assert!(r.is_err());
        let r = CsrMatrix::from_parts(2, 2, vec![0, 1], vec![0], vec![1.0]);
        assert!(r.is_err(), "row_offsets length must be n_rows + 1");
    }

    #[test]
    fn validate_rejects_len_mismatch() {
        let r = CsrMatrix::from_parts(1, 3, vec![0, 2], vec![0, 1], vec![1.0]);
        assert!(r.is_err());
    }

    #[test]
    fn slice_rows_produces_valid_panel() {
        let m = example();
        let p = m.slice_rows(1, 3);
        p.validate().unwrap();
        assert_eq!(p.n_rows(), 2);
        assert_eq!(p.n_cols(), 4);
        assert_eq!(p.row_cols(0), &[1]);
        assert_eq!(p.row_cols(1), &[0, 3]);
        assert_eq!(p.row_values(1), &[4.0, 5.0]);
    }

    #[test]
    fn slice_rows_full_and_empty() {
        let m = example();
        assert_eq!(m.slice_rows(0, 4), m);
        let e = m.slice_rows(2, 2);
        assert_eq!(e.n_rows(), 0);
        assert_eq!(e.nnz(), 0);
        e.validate().unwrap();
    }

    #[test]
    fn approx_eq_tolerates_small_value_noise() {
        let a = example();
        let mut b = example();
        b.values_mut()[0] += 1e-12;
        assert!(a.approx_eq(&b, 1e-9));
        b.values_mut()[0] += 1.0;
        assert!(!a.approx_eq(&b, 1e-9));
    }

    #[test]
    fn approx_eq_requires_same_structure() {
        let a = example();
        let b = CsrMatrix::zeros(4, 4);
        assert!(!a.approx_eq(&b, 1.0));
    }

    #[test]
    fn prune_removes_small_entries() {
        let mut m = example();
        m.values_mut()[2] = 1e-15;
        let p = m.prune(1e-12);
        assert_eq!(p.nnz(), 5);
        p.validate().unwrap();
        assert_eq!(p.get(1, 1), 0.0);
    }

    #[test]
    fn storage_bytes_counts_all_arrays() {
        let m = example();
        let expect = 5 * std::mem::size_of::<usize>() + 6 * 4 + 6 * 8;
        assert_eq!(m.storage_bytes(), expect);
    }
}
