//! Structural and numeric matrix operations.
//!
//! These are not the SpGEMM kernels themselves (those live in the
//! executor crates) but the supporting operations the framework and its
//! tests need: transpose, sparse matrix-vector product, element-wise
//! addition, and scaling.

use crate::csr::{ColId, CsrMatrix};
use crate::{Result, SparseError};

/// Transposes `m` (CSR → CSR of the transpose) in `O(nnz + n)` time via
/// a counting sort over columns.
///
/// Rows of the result are sorted because the input is traversed in
/// row-major (hence for a fixed output row, increasing column) order.
pub fn transpose(m: &CsrMatrix) -> CsrMatrix {
    let nnz = m.nnz();
    let (n_rows, n_cols) = (m.n_rows(), m.n_cols());
    let mut counts = vec![0usize; n_cols + 1];
    for &c in m.col_ids() {
        counts[c as usize + 1] += 1;
    }
    for i in 0..n_cols {
        counts[i + 1] += counts[i];
    }
    let offsets = counts.clone();
    let mut cols = vec![0 as ColId; nnz];
    let mut vals = vec![0.0f64; nnz];
    let mut cursor = offsets.clone();
    for r in 0..n_rows {
        for (c, v) in m.row_iter(r) {
            let dst = cursor[c as usize];
            cols[dst] = r as ColId;
            vals[dst] = v;
            cursor[c as usize] += 1;
        }
    }
    CsrMatrix::from_parts_unchecked(n_cols, n_rows, offsets, cols, vals)
}

/// Sparse matrix-vector product `y = m * x`.
///
/// # Errors
/// Returns [`SparseError::DimensionMismatch`] if `x.len() != m.n_cols()`.
pub fn spmv(m: &CsrMatrix, x: &[f64]) -> Result<Vec<f64>> {
    if x.len() != m.n_cols() {
        return Err(SparseError::DimensionMismatch {
            op: "spmv",
            lhs: (m.n_rows(), m.n_cols()),
            rhs: (x.len(), 1),
        });
    }
    let y = (0..m.n_rows())
        .map(|r| m.row_iter(r).map(|(c, v)| v * x[c as usize]).sum())
        .collect();
    Ok(y)
}

/// Element-wise sum `a + b` (merged structure; entries that cancel to
/// exactly zero are kept structurally, matching SpGEMM conventions).
///
/// # Errors
/// Returns [`SparseError::DimensionMismatch`] on shape mismatch.
pub fn add(a: &CsrMatrix, b: &CsrMatrix) -> Result<CsrMatrix> {
    if a.n_rows() != b.n_rows() || a.n_cols() != b.n_cols() {
        return Err(SparseError::DimensionMismatch {
            op: "add",
            lhs: (a.n_rows(), a.n_cols()),
            rhs: (b.n_rows(), b.n_cols()),
        });
    }
    let mut offsets = Vec::with_capacity(a.n_rows() + 1);
    let mut cols = Vec::with_capacity(a.nnz() + b.nnz());
    let mut vals = Vec::with_capacity(a.nnz() + b.nnz());
    offsets.push(0);
    for r in 0..a.n_rows() {
        let (ac, av) = (a.row_cols(r), a.row_values(r));
        let (bc, bv) = (b.row_cols(r), b.row_values(r));
        let (mut i, mut j) = (0, 0);
        while i < ac.len() && j < bc.len() {
            match ac[i].cmp(&bc[j]) {
                std::cmp::Ordering::Less => {
                    cols.push(ac[i]);
                    vals.push(av[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    cols.push(bc[j]);
                    vals.push(bv[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    cols.push(ac[i]);
                    vals.push(av[i] + bv[j]);
                    i += 1;
                    j += 1;
                }
            }
        }
        cols.extend_from_slice(&ac[i..]);
        vals.extend_from_slice(&av[i..]);
        cols.extend_from_slice(&bc[j..]);
        vals.extend_from_slice(&bv[j..]);
        offsets.push(cols.len());
    }
    Ok(CsrMatrix::from_parts_unchecked(
        a.n_rows(),
        a.n_cols(),
        offsets,
        cols,
        vals,
    ))
}

/// Returns `m` with every stored value multiplied by `s`.
pub fn scale(m: &CsrMatrix, s: f64) -> CsrMatrix {
    let mut out = m.clone();
    for v in out.values_mut() {
        *v *= s;
    }
    out
}

/// Horizontally concatenates matrices with identical row counts:
/// `[a | b | c ...]`. This is how output chunks `C[r][0..k]` of one row
/// panel are re-assembled into full rows of `C` (paper Algorithm 3).
pub fn hstack(parts: &[&CsrMatrix]) -> Result<CsrMatrix> {
    let n_rows = parts.first().map_or(0, |m| m.n_rows());
    let mut n_cols = 0usize;
    let mut nnz = 0usize;
    for m in parts {
        if m.n_rows() != n_rows {
            return Err(SparseError::DimensionMismatch {
                op: "hstack",
                lhs: (n_rows, 0),
                rhs: (m.n_rows(), m.n_cols()),
            });
        }
        n_cols += m.n_cols();
        nnz += m.nnz();
    }
    if n_cols > ColId::MAX as usize {
        return Err(SparseError::TooManyColumns(n_cols));
    }
    let mut offsets = Vec::with_capacity(n_rows + 1);
    let mut cols = Vec::with_capacity(nnz);
    let mut vals = Vec::with_capacity(nnz);
    offsets.push(0);
    for r in 0..n_rows {
        let mut base = 0 as ColId;
        for m in parts {
            for (c, v) in m.row_iter(r) {
                cols.push(base + c);
                vals.push(v);
            }
            base += m.n_cols() as ColId;
        }
        offsets.push(cols.len());
    }
    Ok(CsrMatrix::from_parts_unchecked(
        n_rows, n_cols, offsets, cols, vals,
    ))
}

/// Vertically concatenates matrices with identical column counts — the
/// row-panel inverse of [`CsrMatrix::slice_rows`].
pub fn vstack(parts: &[&CsrMatrix]) -> Result<CsrMatrix> {
    let n_cols = parts.first().map_or(0, |m| m.n_cols());
    let mut nnz = 0usize;
    let mut n_rows = 0usize;
    for m in parts {
        if m.n_cols() != n_cols {
            return Err(SparseError::DimensionMismatch {
                op: "vstack",
                lhs: (0, n_cols),
                rhs: (m.n_rows(), m.n_cols()),
            });
        }
        nnz += m.nnz();
        n_rows += m.n_rows();
    }
    let mut offsets = Vec::with_capacity(n_rows + 1);
    let mut cols = Vec::with_capacity(nnz);
    let mut vals = Vec::with_capacity(nnz);
    offsets.push(0);
    for m in parts {
        for r in 0..m.n_rows() {
            cols.extend_from_slice(m.row_cols(r));
            vals.extend_from_slice(m.row_values(r));
            offsets.push(cols.len());
        }
    }
    Ok(CsrMatrix::from_parts_unchecked(
        n_rows, n_cols, offsets, cols, vals,
    ))
}

/// Frobenius norm of the stored values.
pub fn frobenius_norm(m: &CsrMatrix) -> f64 {
    m.values().iter().map(|v| v * v).sum::<f64>().sqrt()
}

/// Applies a symmetric permutation `P·M·Pᵀ`: row (and column) `i` of
/// the result is row (and column) `perm[i]` of the input.
///
/// `perm` must be a permutation of `0..n` for a square matrix.
/// Symmetric permutations preserve every SpGEMM-relevant statistic of
/// `M²` (flops, output nnz, compression ratio) while redistributing
/// the nonzeros across panel grids.
pub fn symmetric_permutation(m: &CsrMatrix, perm: &[usize]) -> CsrMatrix {
    let n = m.n_rows();
    assert_eq!(n, m.n_cols(), "symmetric permutation needs a square matrix");
    assert_eq!(perm.len(), n, "permutation length mismatch");
    let mut pos = vec![usize::MAX; n];
    for (i, &p) in perm.iter().enumerate() {
        assert!(p < n && pos[p] == usize::MAX, "not a permutation");
        pos[p] = i;
    }
    // Row i of the result is row perm[i] of m, with columns remapped
    // through pos and re-sorted.
    let mut offsets = Vec::with_capacity(n + 1);
    let mut cols: Vec<ColId> = Vec::with_capacity(m.nnz());
    let mut vals: Vec<f64> = Vec::with_capacity(m.nnz());
    offsets.push(0);
    let mut scratch: Vec<(ColId, f64)> = Vec::new();
    for &src in perm.iter() {
        scratch.clear();
        for (c, v) in m.row_iter(src) {
            scratch.push((pos[c as usize] as ColId, v));
        }
        scratch.sort_unstable_by_key(|&(c, _)| c);
        for &(c, v) in &scratch {
            cols.push(c);
            vals.push(v);
        }
        offsets.push(cols.len());
    }
    CsrMatrix::from_parts_unchecked(n, n, offsets, cols, vals)
}

/// [`symmetric_permutation`] with a seeded random permutation.
pub fn random_symmetric_permutation(m: &CsrMatrix, seed: u64) -> CsrMatrix {
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let mut perm: Vec<usize> = (0..m.n_rows()).collect();
    perm.shuffle(&mut rng);
    symmetric_permutation(m, &perm)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> CsrMatrix {
        CsrMatrix::from_parts(
            3,
            4,
            vec![0, 2, 3, 5],
            vec![0, 2, 1, 0, 3],
            vec![1.0, 2.0, 3.0, 4.0, 5.0],
        )
        .unwrap()
    }

    #[test]
    fn transpose_roundtrip() {
        let m = example();
        let t = transpose(&m);
        t.validate().unwrap();
        assert_eq!(t.n_rows(), 4);
        assert_eq!(t.n_cols(), 3);
        assert_eq!(t.get(0, 0), 1.0);
        assert_eq!(t.get(2, 0), 2.0);
        assert_eq!(t.get(1, 1), 3.0);
        assert_eq!(transpose(&t), m);
    }

    #[test]
    fn transpose_identity_is_identity() {
        let i = CsrMatrix::identity(5);
        assert_eq!(transpose(&i), i);
    }

    #[test]
    fn spmv_basic() {
        let m = example();
        let y = spmv(&m, &[1.0, 1.0, 1.0, 1.0]).unwrap();
        assert_eq!(y, vec![3.0, 3.0, 9.0]);
        assert!(spmv(&m, &[1.0; 3]).is_err());
    }

    #[test]
    fn add_merges_structures() {
        let a = example();
        let b = transpose(&transpose(&a)); // same matrix
        let s = add(&a, &b).unwrap();
        s.validate().unwrap();
        assert!(s.approx_eq(&scale(&a, 2.0), 0.0));
    }

    #[test]
    fn add_disjoint_structures() {
        let a = CsrMatrix::from_parts(2, 2, vec![0, 1, 1], vec![0], vec![1.0]).unwrap();
        let b = CsrMatrix::from_parts(2, 2, vec![0, 1, 2], vec![1, 0], vec![2.0, 3.0]).unwrap();
        let s = add(&a, &b).unwrap();
        assert_eq!(s.nnz(), 3);
        assert_eq!(s.get(0, 0), 1.0);
        assert_eq!(s.get(0, 1), 2.0);
        assert_eq!(s.get(1, 0), 3.0);
    }

    #[test]
    fn add_rejects_shape_mismatch() {
        let a = CsrMatrix::zeros(2, 2);
        let b = CsrMatrix::zeros(2, 3);
        assert!(add(&a, &b).is_err());
    }

    #[test]
    fn hstack_reassembles_column_chunks() {
        let m = example();
        let left =
            CsrMatrix::from_parts(3, 2, vec![0, 1, 2, 3], vec![0, 1, 0], vec![1.0, 3.0, 4.0])
                .unwrap();
        let right =
            CsrMatrix::from_parts(3, 2, vec![0, 1, 1, 2], vec![0, 1], vec![2.0, 5.0]).unwrap();
        let joined = hstack(&[&left, &right]).unwrap();
        assert_eq!(joined, m);
    }

    #[test]
    fn vstack_reassembles_row_panels() {
        let m = example();
        let top = m.slice_rows(0, 1);
        let bottom = m.slice_rows(1, 3);
        let joined = vstack(&[&top, &bottom]).unwrap();
        assert_eq!(joined, m);
    }

    #[test]
    fn stack_shape_errors() {
        let a = CsrMatrix::zeros(2, 2);
        let b = CsrMatrix::zeros(3, 2);
        assert!(hstack(&[&a, &b]).is_err());
        let c = CsrMatrix::zeros(2, 3);
        assert!(vstack(&[&a, &c]).is_err());
    }

    #[test]
    fn symmetric_permutation_preserves_product_stats() {
        let m = crate::gen::grid2d_stencil(12, 12, 1, 3);
        let p = crate::ops::random_symmetric_permutation(&m, 9);
        p.validate().unwrap();
        assert_eq!(p.nnz(), m.nnz());
        use crate::stats::ProductStats;
        let sm = ProductStats::square(&m);
        let sp = ProductStats::square(&p);
        assert_eq!(sm.flops, sp.flops);
        assert_eq!(sm.nnz_c, sp.nnz_c);
    }

    #[test]
    fn symmetric_permutation_identity_perm_is_noop() {
        let m = example();
        let sq = crate::gen::tridiagonal(4);
        let perm: Vec<usize> = (0..4).collect();
        assert_eq!(symmetric_permutation(&sq, &perm), sq);
        let _ = m; // example() is rectangular; only square inputs allowed.
    }

    #[test]
    fn symmetric_permutation_reverses_correctly() {
        let sq = crate::gen::tridiagonal(4);
        let perm = vec![3usize, 2, 1, 0];
        let r = symmetric_permutation(&sq, &perm);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(r.get(i, j), sq.get(3 - i, 3 - j));
            }
        }
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn symmetric_permutation_rejects_duplicates() {
        let sq = crate::gen::tridiagonal(3);
        symmetric_permutation(&sq, &[0, 0, 1]);
    }

    #[test]
    fn frobenius_norm_matches_manual() {
        let m = example();
        let expect = (1.0f64 + 4.0 + 9.0 + 16.0 + 25.0).sqrt();
        assert!((frobenius_norm(&m) - expect).abs() < 1e-12);
    }
}
