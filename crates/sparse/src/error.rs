//! Error type shared by the sparse-matrix substrate.

use std::fmt;

/// Errors produced while constructing, reading, or transforming sparse
/// matrices.
#[derive(Debug)]
pub enum SparseError {
    /// A structural invariant of the CSR format was violated.
    InvalidCsr(String),
    /// An entry referenced a row or column outside the matrix dimensions.
    IndexOutOfBounds {
        /// Row index of the offending entry.
        row: usize,
        /// Column index of the offending entry.
        col: usize,
        /// Number of rows in the matrix.
        n_rows: usize,
        /// Number of columns in the matrix.
        n_cols: usize,
    },
    /// Matrix dimensions are incompatible for the requested operation.
    DimensionMismatch {
        /// Human-readable description of the operation.
        op: &'static str,
        /// Left-hand side shape.
        lhs: (usize, usize),
        /// Right-hand side shape.
        rhs: (usize, usize),
    },
    /// The matrix has more columns than a `u32` column id can address.
    TooManyColumns(usize),
    /// A parse error while reading an external format.
    Parse {
        /// Line number (1-based) where parsing failed, if known.
        line: usize,
        /// Description of the problem.
        msg: String,
    },
    /// An underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::InvalidCsr(msg) => write!(f, "invalid CSR structure: {msg}"),
            SparseError::IndexOutOfBounds {
                row,
                col,
                n_rows,
                n_cols,
            } => write!(
                f,
                "entry ({row}, {col}) out of bounds for {n_rows}x{n_cols} matrix"
            ),
            SparseError::DimensionMismatch { op, lhs, rhs } => write!(
                f,
                "dimension mismatch in {op}: {}x{} vs {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            SparseError::TooManyColumns(n) => {
                write!(f, "{n} columns exceeds u32 column-id range")
            }
            SparseError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
            SparseError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for SparseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SparseError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SparseError {
    fn from(e: std::io::Error) -> Self {
        SparseError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = SparseError::IndexOutOfBounds {
            row: 7,
            col: 9,
            n_rows: 5,
            n_cols: 5,
        };
        assert!(e.to_string().contains("(7, 9)"));
        assert!(e.to_string().contains("5x5"));

        let e = SparseError::DimensionMismatch {
            op: "spgemm",
            lhs: (3, 4),
            rhs: (5, 6),
        };
        assert!(e.to_string().contains("spgemm"));
        assert!(e.to_string().contains("3x4"));

        let e = SparseError::Parse {
            line: 12,
            msg: "bad token".into(),
        };
        assert!(e.to_string().contains("line 12"));
    }

    #[test]
    fn io_error_preserves_source() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: SparseError = io.into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
