//! Coordinate (triplet) format — the usual construction and interchange
//! format (Matrix Market files are triplet lists).

use crate::csr::{ColId, CsrMatrix};
use crate::{Result, SparseError};

/// A sparse matrix as an unordered list of `(row, col, value)` triplets.
///
/// Duplicate coordinates are allowed and are *summed* when converting to
/// CSR, matching Matrix Market semantics.
#[derive(Clone, Debug, Default)]
pub struct CooMatrix {
    n_rows: usize,
    n_cols: usize,
    rows: Vec<usize>,
    cols: Vec<ColId>,
    values: Vec<f64>,
}

impl CooMatrix {
    /// Creates an empty triplet matrix of the given shape.
    pub fn new(n_rows: usize, n_cols: usize) -> Self {
        CooMatrix {
            n_rows,
            n_cols,
            rows: Vec::new(),
            cols: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Creates an empty triplet matrix with storage reserved for `cap`
    /// entries.
    pub fn with_capacity(n_rows: usize, n_cols: usize, cap: usize) -> Self {
        CooMatrix {
            n_rows,
            n_cols,
            rows: Vec::with_capacity(cap),
            cols: Vec::with_capacity(cap),
            values: Vec::with_capacity(cap),
        }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Number of stored triplets (duplicates counted individually).
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Appends a triplet.
    ///
    /// # Errors
    /// Returns [`SparseError::IndexOutOfBounds`] if the coordinate is
    /// outside the matrix shape.
    pub fn push(&mut self, row: usize, col: usize, value: f64) -> Result<()> {
        if row >= self.n_rows || col >= self.n_cols {
            return Err(SparseError::IndexOutOfBounds {
                row,
                col,
                n_rows: self.n_rows,
                n_cols: self.n_cols,
            });
        }
        self.rows.push(row);
        self.cols.push(col as ColId);
        self.values.push(value);
        Ok(())
    }

    /// Iterator over stored triplets in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, ColId, f64)> + '_ {
        self.rows
            .iter()
            .zip(self.cols.iter())
            .zip(self.values.iter())
            .map(|((&r, &c), &v)| (r, c, v))
    }

    /// Converts to CSR, sorting entries and summing duplicates.
    ///
    /// Uses a counting sort over rows (`O(nnz + n_rows)`) followed by a
    /// per-row sort by column, so conversion is near-linear for the
    /// matrices in this study.
    pub fn to_csr(&self) -> CsrMatrix {
        let nnz = self.values.len();
        // Counting sort by row.
        let mut counts = vec![0usize; self.n_rows + 1];
        for &r in &self.rows {
            counts[r + 1] += 1;
        }
        for i in 0..self.n_rows {
            counts[i + 1] += counts[i];
        }
        let row_starts = counts.clone();
        let mut cols = vec![0 as ColId; nnz];
        let mut vals = vec![0.0f64; nnz];
        {
            let mut cursor = row_starts.clone();
            for i in 0..nnz {
                let r = self.rows[i];
                let dst = cursor[r];
                cols[dst] = self.cols[i];
                vals[dst] = self.values[i];
                cursor[r] += 1;
            }
        }
        // Per-row: sort by column, then sum duplicates while compacting.
        let mut out_offsets = Vec::with_capacity(self.n_rows + 1);
        let mut out_cols = Vec::with_capacity(nnz);
        let mut out_vals = Vec::with_capacity(nnz);
        out_offsets.push(0);
        let mut perm: Vec<u32> = Vec::new();
        for r in 0..self.n_rows {
            let (lo, hi) = (row_starts[r], row_starts[r + 1]);
            let rc = &cols[lo..hi];
            let rv = &vals[lo..hi];
            perm.clear();
            perm.extend(0..(hi - lo) as u32);
            // Stable order for duplicate columns (sort key includes the
            // original index) so summation order — and hence the exact
            // floating-point result — is insertion order. This keeps
            // symmetric inputs exactly symmetric.
            perm.sort_unstable_by_key(|&i| (rc[i as usize], i));
            let mut last_col: Option<ColId> = None;
            for &i in &perm {
                let (c, v) = (rc[i as usize], rv[i as usize]);
                if last_col == Some(c) {
                    *out_vals.last_mut().unwrap() += v;
                } else {
                    out_cols.push(c);
                    out_vals.push(v);
                    last_col = Some(c);
                }
            }
            out_offsets.push(out_cols.len());
        }
        CsrMatrix::from_parts_unchecked(self.n_rows, self.n_cols, out_offsets, out_cols, out_vals)
    }
}

impl From<&CsrMatrix> for CooMatrix {
    fn from(m: &CsrMatrix) -> Self {
        let mut coo = CooMatrix::with_capacity(m.n_rows(), m.n_cols(), m.nnz());
        for (r, c, v) in m.iter() {
            coo.rows.push(r);
            coo.cols.push(c);
            coo.values.push(v);
        }
        coo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_rejects_out_of_bounds() {
        let mut m = CooMatrix::new(2, 2);
        assert!(m.push(2, 0, 1.0).is_err());
        assert!(m.push(0, 2, 1.0).is_err());
        assert!(m.push(1, 1, 1.0).is_ok());
    }

    #[test]
    fn to_csr_sorts_and_sums_duplicates() {
        let mut m = CooMatrix::new(3, 3);
        m.push(2, 1, 1.0).unwrap();
        m.push(0, 2, 2.0).unwrap();
        m.push(0, 0, 3.0).unwrap();
        m.push(2, 1, 4.0).unwrap(); // duplicate of first
        m.push(0, 2, -2.0).unwrap(); // cancels (but stays structurally)
        let csr = m.to_csr();
        csr.validate().unwrap();
        assert_eq!(csr.nnz(), 3);
        assert_eq!(csr.row_cols(0), &[0, 2]);
        assert_eq!(csr.row_values(0), &[3.0, 0.0]);
        assert_eq!(csr.get(2, 1), 5.0);
        assert_eq!(csr.row_nnz(1), 0);
    }

    #[test]
    fn empty_coo_converts_to_empty_csr() {
        let m = CooMatrix::new(4, 5);
        let csr = m.to_csr();
        csr.validate().unwrap();
        assert_eq!(csr.n_rows(), 4);
        assert_eq!(csr.n_cols(), 5);
        assert_eq!(csr.nnz(), 0);
    }

    #[test]
    fn csr_coo_roundtrip() {
        let csr = crate::csr::CsrMatrix::from_parts(
            2,
            3,
            vec![0, 2, 3],
            vec![0, 2, 1],
            vec![1.0, 2.0, 3.0],
        )
        .unwrap();
        let coo = CooMatrix::from(&csr);
        assert_eq!(coo.nnz(), 3);
        let back = coo.to_csr();
        assert_eq!(back, csr);
    }

    #[test]
    fn iter_preserves_insertion_order() {
        let mut m = CooMatrix::new(2, 2);
        m.push(1, 0, 9.0).unwrap();
        m.push(0, 1, 8.0).unwrap();
        let v: Vec<_> = m.iter().collect();
        assert_eq!(v, vec![(1, 0, 9.0), (0, 1, 8.0)]);
    }
}
