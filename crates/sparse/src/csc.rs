//! Compressed sparse column format.
//!
//! CSC is the column-major dual of CSR. The out-of-core framework needs
//! *column panels* of `B` (Section III-D); once a matrix is in CSC,
//! slicing a column range is as trivial as row slicing is for CSR —
//! which makes CSC the basis of the fourth column-partitioner strategy
//! (built once in `O(nnz)`, then every panel is a contiguous gather).

use crate::csr::{ColId, CsrMatrix};
use crate::{Result, SparseError};

/// A sparse matrix in compressed sparse column format.
///
/// Invariants mirror [`CsrMatrix`]'s, transposed: `col_offsets` has
/// `n_cols + 1` non-decreasing entries, and row ids are strictly
/// increasing within each column.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CscMatrix {
    n_rows: usize,
    n_cols: usize,
    col_offsets: Vec<usize>,
    row_ids: Vec<ColId>,
    values: Vec<f64>,
}

impl CscMatrix {
    /// Converts from CSR in `O(nnz + n_cols)` via a counting sort.
    pub fn from_csr(m: &CsrMatrix) -> Self {
        let nnz = m.nnz();
        let (n_rows, n_cols) = (m.n_rows(), m.n_cols());
        let mut counts = vec![0usize; n_cols + 1];
        for &c in m.col_ids() {
            counts[c as usize + 1] += 1;
        }
        for i in 0..n_cols {
            counts[i + 1] += counts[i];
        }
        let col_offsets = counts.clone();
        let mut row_ids = vec![0 as ColId; nnz];
        let mut values = vec![0.0f64; nnz];
        let mut cursor = col_offsets.clone();
        for r in 0..n_rows {
            for (c, v) in m.row_iter(r) {
                let dst = cursor[c as usize];
                row_ids[dst] = r as ColId;
                values[dst] = v;
                cursor[c as usize] += 1;
            }
        }
        CscMatrix {
            n_rows,
            n_cols,
            col_offsets,
            row_ids,
            values,
        }
    }

    /// Converts back to CSR.
    pub fn to_csr(&self) -> CsrMatrix {
        let nnz = self.row_ids.len();
        let mut counts = vec![0usize; self.n_rows + 1];
        for &r in &self.row_ids {
            counts[r as usize + 1] += 1;
        }
        for i in 0..self.n_rows {
            counts[i + 1] += counts[i];
        }
        let row_offsets = counts.clone();
        let mut cols = vec![0 as ColId; nnz];
        let mut vals = vec![0.0f64; nnz];
        let mut cursor = row_offsets.clone();
        for c in 0..self.n_cols {
            for i in self.col_offsets[c]..self.col_offsets[c + 1] {
                let r = self.row_ids[i] as usize;
                let dst = cursor[r];
                cols[dst] = c as ColId;
                vals[dst] = self.values[i];
                cursor[r] += 1;
            }
        }
        CsrMatrix::from_parts_unchecked(self.n_rows, self.n_cols, row_offsets, cols, vals)
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Stored entries.
    pub fn nnz(&self) -> usize {
        self.row_ids.len()
    }

    /// Entries in column `c`.
    pub fn col_nnz(&self, c: usize) -> usize {
        self.col_offsets[c + 1] - self.col_offsets[c]
    }

    /// Row ids of column `c`.
    pub fn col_rows(&self, c: usize) -> &[ColId] {
        &self.row_ids[self.col_offsets[c]..self.col_offsets[c + 1]]
    }

    /// Values of column `c`.
    pub fn col_values(&self, c: usize) -> &[f64] {
        &self.values[self.col_offsets[c]..self.col_offsets[c + 1]]
    }

    /// Extracts columns `[start, end)` as a CSR matrix with *local*
    /// column ids — exactly the column-panel shape the out-of-core
    /// framework consumes.
    pub fn slice_cols_to_csr(&self, start: usize, end: usize) -> CsrMatrix {
        assert!(
            start <= end && end <= self.n_cols,
            "column slice out of bounds"
        );
        let width = end - start;
        let lo = self.col_offsets[start];
        let hi = self.col_offsets[end];
        let nnz = hi - lo;
        // Counting sort the slice back to row-major.
        let mut counts = vec![0usize; self.n_rows + 1];
        for &r in &self.row_ids[lo..hi] {
            counts[r as usize + 1] += 1;
        }
        for i in 0..self.n_rows {
            counts[i + 1] += counts[i];
        }
        let row_offsets = counts.clone();
        let mut cols = vec![0 as ColId; nnz];
        let mut vals = vec![0.0f64; nnz];
        let mut cursor = row_offsets.clone();
        for c in start..end {
            for i in self.col_offsets[c]..self.col_offsets[c + 1] {
                let r = self.row_ids[i] as usize;
                let dst = cursor[r];
                cols[dst] = (c - start) as ColId;
                vals[dst] = self.values[i];
                cursor[r] += 1;
            }
        }
        CsrMatrix::from_parts_unchecked(self.n_rows, width, row_offsets, cols, vals)
    }

    /// Checks the CSC invariants.
    pub fn validate(&self) -> Result<()> {
        if self.col_offsets.len() != self.n_cols + 1 {
            return Err(SparseError::InvalidCsr(
                "col_offsets length mismatch".into(),
            ));
        }
        if self.col_offsets[0] != 0
            || *self.col_offsets.last().unwrap() != self.row_ids.len()
            || self.row_ids.len() != self.values.len()
        {
            return Err(SparseError::InvalidCsr("CSC array bounds mismatch".into()));
        }
        for c in 0..self.n_cols {
            if self.col_offsets[c] > self.col_offsets[c + 1] {
                return Err(SparseError::InvalidCsr(format!(
                    "col_offsets decreasing at column {c}"
                )));
            }
            let rows = self.col_rows(c);
            for w in rows.windows(2) {
                if w[0] >= w[1] {
                    return Err(SparseError::InvalidCsr(format!(
                        "column {c} row ids not strictly increasing"
                    )));
                }
            }
            if let Some(&last) = rows.last() {
                if last as usize >= self.n_rows {
                    return Err(SparseError::IndexOutOfBounds {
                        row: last as usize,
                        col: c,
                        n_rows: self.n_rows,
                        n_cols: self.n_cols,
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::erdos_renyi;
    use crate::ops::transpose;

    #[test]
    fn csr_csc_roundtrip() {
        let m = erdos_renyi(40, 55, 0.1, 3);
        let csc = CscMatrix::from_csr(&m);
        csc.validate().unwrap();
        assert_eq!(csc.nnz(), m.nnz());
        assert_eq!(csc.to_csr(), m);
    }

    #[test]
    fn csc_columns_match_transpose_rows() {
        let m = erdos_renyi(30, 25, 0.15, 4);
        let csc = CscMatrix::from_csr(&m);
        let t = transpose(&m);
        for c in 0..25 {
            assert_eq!(csc.col_rows(c), t.row_cols(c), "column {c} structure");
            assert_eq!(csc.col_values(c), t.row_values(c), "column {c} values");
        }
    }

    #[test]
    fn slice_cols_matches_naive_panel() {
        let m = erdos_renyi(50, 60, 0.1, 5);
        let csc = CscMatrix::from_csr(&m);
        let ranges = crate::partition::col::even_col_ranges(&m, 4);
        let naive = crate::partition::col::ColPartitioner::Naive.partition(&m, &ranges);
        for (range, expect) in ranges.iter().zip(&naive) {
            let got = csc.slice_cols_to_csr(range.start, range.end);
            assert_eq!(got, expect.matrix, "panel {range:?}");
        }
    }

    #[test]
    fn empty_and_degenerate() {
        let z = CsrMatrix::zeros(4, 6);
        let csc = CscMatrix::from_csr(&z);
        csc.validate().unwrap();
        assert_eq!(csc.to_csr(), z);
        assert_eq!(csc.slice_cols_to_csr(2, 2).n_cols(), 0);
        assert_eq!(csc.slice_cols_to_csr(0, 6), z);
    }
}
