#![warn(missing_docs)]

//! Sparse matrix substrate for the out-of-core CPU-GPU SpGEMM reproduction.
//!
//! This crate provides everything the SpGEMM executors need from the
//! "matrix side" of the system:
//!
//! * [`CsrMatrix`] — the compressed sparse row format used throughout the
//!   paper (Section II-A), with sorted column ids per row.
//! * [`CooMatrix`] and [`CsrBuilder`] — construction paths.
//! * [`ops`] — transpose, SpMV, element-wise addition, comparisons.
//! * [`io`] — Matrix Market and a compact binary format.
//! * [`gen`] — deterministic synthetic generators (R-MAT, Erdős–Rényi,
//!   banded/FEM-style, Kronecker) plus [`gen::suite()`], the 9-matrix
//!   analogue of the paper's Table II evaluation suite.
//! * [`stats`] — nnz / flop / compression-ratio analysis (Table II).
//! * [`partition`] — row-panel and two-stage column-panel partitioners
//!   (Section III-D), including the `col_offset` cursor optimization.
//!
//! Column indices are stored as `u32` ([`ColId`]); values are `f64`, the
//! data type the paper evaluates with (Section V-B).
//!
//! ```
//! use sparse::{CooMatrix, CsrMatrix};
//! use sparse::partition::col::{even_col_ranges, ColPartitioner};
//!
//! // Build a matrix from triplets, partition it into column panels.
//! let mut coo = CooMatrix::new(3, 6);
//! coo.push(0, 0, 1.0).unwrap();
//! coo.push(1, 3, 2.0).unwrap();
//! coo.push(2, 5, 3.0).unwrap();
//! let m: CsrMatrix = coo.to_csr();
//! let panels = ColPartitioner::Cursor.partition(&m, &even_col_ranges(&m, 2));
//! assert_eq!(panels.len(), 2);
//! assert_eq!(panels[0].matrix.nnz() + panels[1].matrix.nnz(), m.nnz());
//! ```

pub mod coo;
pub mod csc;
pub mod csr;
pub mod error;
pub mod gen;
pub mod io;
pub mod ops;
pub mod partition;
pub mod stats;
pub mod view;

mod builder;

pub use builder::CsrBuilder;
pub use coo::CooMatrix;
pub use csc::CscMatrix;
pub use csr::{ColId, CsrMatrix};
pub use error::SparseError;
pub use view::CsrView;

/// Result alias for fallible sparse-matrix operations.
pub type Result<T> = std::result::Result<T, SparseError>;
