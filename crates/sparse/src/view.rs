//! Borrowed CSR views — zero-copy row panels.
//!
//! Because CSR stores each row contiguously, a *row panel* (paper
//! Section III-D: "partitioning the matrix A to row panels is
//! straight-forward") is just a sub-range of the parent arrays plus an
//! offset rebase. [`CsrView`] captures that without copying, so the CPU
//! side of the hybrid executor can hand panels to workers with no
//! allocation.

use crate::csr::{ColId, CsrMatrix};

/// An immutable view of a contiguous row range of a [`CsrMatrix`].
#[derive(Clone, Copy, Debug)]
pub struct CsrView<'a> {
    n_cols: usize,
    /// Offset subtracted from the parent `row_offsets` entries.
    base: usize,
    row_offsets: &'a [usize],
    col_ids: &'a [ColId],
    values: &'a [f64],
}

impl<'a> CsrView<'a> {
    /// Views the whole matrix.
    pub fn of(m: &'a CsrMatrix) -> Self {
        Self::rows(m, 0, m.n_rows())
    }

    /// Views rows `[start, end)` of `m`.
    pub fn rows(m: &'a CsrMatrix, start: usize, end: usize) -> Self {
        assert!(start <= end && end <= m.n_rows(), "row view out of bounds");
        let offsets = &m.row_offsets()[start..=end];
        let lo = offsets[0];
        let hi = *offsets.last().unwrap();
        CsrView {
            n_cols: m.n_cols(),
            base: lo,
            row_offsets: offsets,
            col_ids: &m.col_ids()[lo..hi],
            values: &m.values()[lo..hi],
        }
    }

    /// Number of rows in the view.
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.row_offsets.len() - 1
    }

    /// Number of columns (same as the parent matrix).
    #[inline]
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Number of stored entries in the view.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.col_ids.len()
    }

    /// Number of stored entries in local row `r`.
    #[inline]
    pub fn row_nnz(&self, r: usize) -> usize {
        self.row_offsets[r + 1] - self.row_offsets[r]
    }

    /// Column ids of local row `r`.
    #[inline]
    pub fn row_cols(&self, r: usize) -> &'a [ColId] {
        &self.col_ids[self.row_offsets[r] - self.base..self.row_offsets[r + 1] - self.base]
    }

    /// Values of local row `r`.
    #[inline]
    pub fn row_values(&self, r: usize) -> &'a [f64] {
        &self.values[self.row_offsets[r] - self.base..self.row_offsets[r + 1] - self.base]
    }

    /// Iterator over `(col, value)` pairs of local row `r`.
    #[inline]
    pub fn row_iter(&self, r: usize) -> impl Iterator<Item = (ColId, f64)> + 'a {
        self.row_cols(r)
            .iter()
            .copied()
            .zip(self.row_values(r).iter().copied())
    }

    /// Copies the view into an owned [`CsrMatrix`].
    pub fn to_owned_matrix(&self) -> CsrMatrix {
        let offsets = self.row_offsets.iter().map(|&o| o - self.base).collect();
        CsrMatrix::from_parts_unchecked(
            self.n_rows(),
            self.n_cols,
            offsets,
            self.col_ids.to_vec(),
            self.values.to_vec(),
        )
    }

    /// Bytes this view would occupy as an owned CSR (planning input).
    pub fn storage_bytes(&self) -> usize {
        std::mem::size_of_val(self.row_offsets)
            + std::mem::size_of_val(self.col_ids)
            + std::mem::size_of_val(self.values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> CsrMatrix {
        CsrMatrix::from_parts(
            4,
            4,
            vec![0, 2, 3, 5, 6],
            vec![0, 2, 1, 0, 3, 2],
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
        )
        .unwrap()
    }

    #[test]
    fn full_view_matches_matrix() {
        let m = example();
        let v = CsrView::of(&m);
        assert_eq!(v.n_rows(), 4);
        assert_eq!(v.nnz(), 6);
        for r in 0..4 {
            assert_eq!(v.row_cols(r), m.row_cols(r));
            assert_eq!(v.row_values(r), m.row_values(r));
        }
    }

    #[test]
    fn middle_view_rebases_rows() {
        let m = example();
        let v = CsrView::rows(&m, 1, 3);
        assert_eq!(v.n_rows(), 2);
        assert_eq!(v.nnz(), 3);
        assert_eq!(v.row_cols(0), &[1]);
        assert_eq!(v.row_values(1), &[4.0, 5.0]);
        assert_eq!(v.row_nnz(1), 2);
    }

    #[test]
    fn to_owned_equals_slice_rows() {
        let m = example();
        let v = CsrView::rows(&m, 1, 4).to_owned_matrix();
        assert_eq!(v, m.slice_rows(1, 4));
        v.validate().unwrap();
    }

    #[test]
    fn empty_view() {
        let m = example();
        let v = CsrView::rows(&m, 2, 2);
        assert_eq!(v.n_rows(), 0);
        assert_eq!(v.nnz(), 0);
        assert_eq!(v.to_owned_matrix().n_rows(), 0);
    }
}
