//! Robustness of the I/O layer: arbitrary input never panics, and
//! round-trips are lossless for arbitrary valid matrices.

use proptest::prelude::*;
use sparse::io::binary::{from_bytes, read_binary, to_bytes, write_binary};
use sparse::io::market::{read_matrix_market_str, write_matrix_market};
use sparse::io::read_matrix_market;
use sparse::{CooMatrix, CsrMatrix};

fn temp_spb(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("sparse_spb_prop_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{tag}.spb"))
}

fn arb_matrix() -> impl Strategy<Value = CsrMatrix> {
    (1..40usize, 1..40usize).prop_flat_map(|(r, c)| {
        prop::collection::vec((0..r, 0..c, -1e6f64..1e6), 0..150).prop_map(move |entries| {
            let mut coo = CooMatrix::new(r, c);
            for (i, j, v) in entries {
                coo.push(i, j, v).unwrap();
            }
            coo.to_csr()
        })
    })
}

proptest! {
    #[test]
    fn arbitrary_text_never_panics(text in "\\PC{0,400}") {
        // Any outcome is fine as long as we do not panic.
        let _ = read_matrix_market_str(&text);
    }

    #[test]
    fn arbitrary_mm_like_text_never_panics(
        body in prop::collection::vec((0u32..100, 0u32..100, -1e9f64..1e9), 0..40),
        rows in 0u32..50,
        cols in 0u32..50,
        nnz in 0u32..60,
    ) {
        let mut text = format!(
            "%%MatrixMarket matrix coordinate real general\n{rows} {cols} {nnz}\n"
        );
        for (r, c, v) in body {
            text.push_str(&format!("{r} {c} {v}\n"));
        }
        let _ = read_matrix_market_str(&text);
    }

    #[test]
    fn arbitrary_bytes_never_panic_binary_reader(data in prop::collection::vec(any::<u8>(), 0..300)) {
        let _ = from_bytes(bytes::Bytes::from(data));
    }

    #[test]
    fn truncated_valid_binary_never_panics(m in arb_matrix(), cut_fraction in 0.0f64..1.0) {
        let raw = to_bytes(&m);
        let cut = ((raw.len() as f64) * cut_fraction) as usize;
        let _ = from_bytes(raw.slice(..cut));
    }

    #[test]
    fn binary_roundtrip_lossless(m in arb_matrix()) {
        let back = from_bytes(to_bytes(&m)).unwrap();
        prop_assert_eq!(back, m);
    }

    #[test]
    fn matrix_market_roundtrip_lossless(m in arb_matrix()) {
        let dir = std::env::temp_dir().join(format!("sparse_mm_prop_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.mtx");
        write_matrix_market(&path, &m).unwrap();
        let back = read_matrix_market(&path).unwrap();
        std::fs::remove_file(&path).ok();
        // Text roundtrip preserves structure exactly and values to
        // full precision (we print with 17 significant digits).
        prop_assert_eq!(back.row_offsets(), m.row_offsets());
        prop_assert_eq!(back.col_ids(), m.col_ids());
        prop_assert!(back.approx_eq(&m, 1e-15));
    }

    #[test]
    fn spb_file_roundtrip_lossless(m in arb_matrix()) {
        let path = temp_spb("roundtrip");
        write_binary(&path, &m).unwrap();
        let back = read_binary(&path).unwrap();
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(back, m);
    }

    #[test]
    fn truncated_spb_file_never_panics(m in arb_matrix(), cut_fraction in 0.0f64..1.0) {
        let raw = to_bytes(&m);
        let cut = ((raw.len() as f64) * cut_fraction) as usize;
        let path = temp_spb("truncated");
        std::fs::write(&path, &raw[..cut]).unwrap();
        let result = read_binary(&path);
        std::fs::remove_file(&path).ok();
        if cut < raw.len() {
            prop_assert!(result.is_err(), "accepted a truncated file (cut {})", cut);
        }
    }

    #[test]
    fn arbitrary_spb_file_bytes_never_panic(data in prop::collection::vec(any::<u8>(), 0..300)) {
        let path = temp_spb("arbitrary");
        std::fs::write(&path, &data).unwrap();
        let _ = read_binary(&path);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_spb_header_on_disk_never_panics(
        m in arb_matrix(),
        pos in 4usize..28,
        val in any::<u8>(),
    ) {
        let mut raw = to_bytes(&m).to_vec();
        if pos < raw.len() {
            raw[pos] = val;
        }
        let path = temp_spb("header");
        std::fs::write(&path, &raw).unwrap();
        // Either a clean error or (if the header survived mutation
        // compatibly) a parsed matrix — never a panic or huge alloc.
        let _ = read_binary(&path);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_header_fields_never_panic(
        m in arb_matrix(),
        pos in 4usize..28,
        val in any::<u8>(),
    ) {
        let mut raw = to_bytes(&m).to_vec();
        if pos < raw.len() {
            raw[pos] = val;
        }
        let _ = from_bytes(bytes::Bytes::from(raw));
    }
}
