//! Vendored criterion-compatible benchmark harness (see
//! `vendor/README.md`).
//!
//! Keeps criterion's API shape (`benchmark_group`, `bench_function`,
//! `bench_with_input`, `Bencher::iter`, `criterion_group!` /
//! `criterion_main!`) but measures with a plain wall-clock loop:
//! a short warm-up, then `sample_size` timed samples, reporting the
//! median with min/max spread and optional throughput. No plotting,
//! no statistics beyond that, no `target/criterion` state.

use std::time::{Duration, Instant};

/// Per-iteration work declared for throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just the parameter, for single-function groups.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Runs the measured closure and records timing.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `f`, self-calibrating the per-sample iteration count so
    /// short closures get batched.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: grow the batch until one batch takes >= 1 ms.
        let mut iters: u64 = 1;
        let batch_floor = Duration::from_millis(1);
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= batch_floor || iters >= 1 << 20 {
                break;
            }
            iters *= 2;
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            self.samples.push(start.elapsed() / iters as u32);
        }
        self.samples.sort();
    }

    fn median(&self) -> Duration {
        if self.samples.is_empty() {
            Duration::ZERO
        } else {
            self.samples[self.samples.len() / 2]
        }
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos() as f64;
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Times `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        self.report(&id.id, &b);
        self
    }

    /// Times `f` under `id` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        self.report(&id.id, &b);
        self
    }

    fn report(&self, id: &str, b: &Bencher) {
        let med = b.median();
        let lo = b.samples.first().copied().unwrap_or_default();
        let hi = b.samples.last().copied().unwrap_or_default();
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if med > Duration::ZERO => {
                let per_s = n as f64 / med.as_secs_f64();
                format!("  ({per_s:.3e} elem/s)")
            }
            Some(Throughput::Bytes(n)) if med > Duration::ZERO => {
                let per_s = n as f64 / med.as_secs_f64();
                format!("  ({:.2} MiB/s)", per_s / (1024.0 * 1024.0))
            }
            _ => String::new(),
        };
        println!(
            "{}/{}: median {} (min {}, max {}){}",
            self.name,
            id,
            format_duration(med),
            format_duration(lo),
            format_duration(hi),
            rate
        );
    }

    /// Ends the group (report-flush point in real criterion; a no-op
    /// marker here).
    pub fn finish(&mut self) {}
}

/// Top-level harness handle.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    /// Times a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group(id.to_string())
            .bench_function("base", f);
        self
    }
}

/// Re-export for code that uses `criterion::black_box`.
pub use std::hint::black_box;

/// Bundles benchmark functions under a group name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench -- --test` / harness probes pass arguments;
            // a plain run has none. Either way, run everything once.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.throughput(Throughput::Elements(100));
        let mut ran = 0u32;
        group.bench_function("count", |b| {
            b.iter(|| {
                ran += 1;
                std::hint::black_box(ran)
            })
        });
        group.finish();
        assert!(ran > 0, "bencher must execute the closure");
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("dense", 8).id, "dense/8");
        assert_eq!(BenchmarkId::from_parameter("lj").id, "lj");
    }
}
