//! Serial stand-in for the `rayon` crate (see `vendor/README.md`).
//!
//! Every `par_*` entry point maps onto the corresponding sequential
//! std iterator, so code written against rayon's data-parallel API
//! compiles and runs unchanged — single-threaded. All algorithms in
//! this workspace assert bit-identical serial/parallel results, so the
//! substitution is semantically invisible; only wall-clock scaling
//! differs (and the repo's recorded baselines note the host thread
//! count alongside every number).

/// The traits user code imports via `use rayon::prelude::*`.
pub mod prelude {
    pub use crate::{
        FlatMapIterExt as _, IntoParallelIterator as _, ParSliceExt as _, ParSliceMutExt as _,
    };
}

/// `.into_par_iter()` for anything iterable (ranges, vectors, ...).
pub trait IntoParallelIterator: IntoIterator + Sized {
    /// Serial stand-in: the plain iterator.
    fn into_par_iter(self) -> Self::IntoIter {
        self.into_iter()
    }
}

impl<T: IntoIterator + Sized> IntoParallelIterator for T {}

/// `.par_iter()` / `.par_chunks()` on slices.
pub trait ParSliceExt<T> {
    /// Serial `.par_iter()`.
    fn par_iter(&self) -> std::slice::Iter<'_, T>;
    /// Serial `.par_chunks()`.
    fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
}

impl<T> ParSliceExt<T> for [T] {
    fn par_iter(&self) -> std::slice::Iter<'_, T> {
        self.iter()
    }

    fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
        self.chunks(chunk_size)
    }
}

/// `.par_iter_mut()` / `.par_chunks_mut()` on slices.
pub trait ParSliceMutExt<T> {
    /// Serial `.par_iter_mut()`.
    fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T>;
    /// Serial `.par_chunks_mut()`.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
}

impl<T> ParSliceMutExt<T> for [T] {
    fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
        self.iter_mut()
    }

    fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
        self.chunks_mut(chunk_size)
    }
}

/// rayon's `flat_map_iter` (std calls it `flat_map`).
pub trait FlatMapIterExt: Iterator + Sized {
    /// Serial `flat_map_iter`.
    fn flat_map_iter<U, F>(self, f: F) -> std::iter::FlatMap<Self, U, F>
    where
        U: IntoIterator,
        F: FnMut(Self::Item) -> U,
    {
        self.flat_map(f)
    }
}

impl<I: Iterator + Sized> FlatMapIterExt for I {}

/// Runs both closures (sequentially here) and returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// Number of worker threads in the current pool (always 1 serially).
pub fn current_num_threads() -> usize {
    1
}

/// Build error for [`ThreadPoolBuilder`] (never produced serially).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Serial `ThreadPoolBuilder`: accepts the configuration and yields a
/// pool whose `install` runs the closure inline.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    _num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records (and otherwise ignores) the requested thread count.
    pub fn num_threads(mut self, n: usize) -> Self {
        self._num_threads = n;
        self
    }

    /// Builds the (serial) pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool)
    }
}

/// Serial thread pool.
#[derive(Debug)]
pub struct ThreadPool;

impl ThreadPool {
    /// Runs `f` inline.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        f()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_ops_match_serial() {
        let v: Vec<u64> = (0..100u64).collect();
        let s: u64 = v.par_iter().map(|&x| x * 2).sum();
        assert_eq!(s, 9900);
        let mut out = vec![0u64; 100];
        out.par_chunks_mut(16).enumerate().for_each(|(b, chunk)| {
            for (i, slot) in chunk.iter_mut().enumerate() {
                *slot = (b * 16 + i) as u64;
            }
        });
        assert_eq!(out, v);
        let flat: Vec<u64> = (0..4u64).into_par_iter().flat_map_iter(|x| 0..x).collect();
        assert_eq!(flat, vec![0, 0, 1, 0, 1, 2]);
    }

    #[test]
    fn join_and_pool_run_inline() {
        let (a, b) = super::join(|| 1, || 2);
        assert_eq!((a, b), (1, 2));
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        assert_eq!(pool.install(|| 7), 7);
    }
}
