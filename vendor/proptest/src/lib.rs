//! Vendored property-testing harness (see `vendor/README.md`).
//!
//! Implements the proptest macro/strategy surface this workspace uses
//! on a deterministic in-crate RNG. Differences from real proptest:
//! no shrinking (a failing case reports its inputs via the panic
//! message and is reproducible — the per-case RNG is seeded from the
//! test's module path and case index) and no persistence files.

/// Deterministic RNG, config, and failure type.
pub mod test_runner {
    /// Per-test configuration.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// A failed (or rejected) test case.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        Fail(String),
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            }
        }
    }

    /// SplitMix64 generator; deterministic per (test name, case index).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn for_case(name: &str, case: u32) -> Self {
            // FNV-1a over the test path, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
            }
            TestRng {
                state: h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "empty strategy range");
            // Widening-multiply reduction: negligible bias, no modulo.
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }

        /// Uniform draw in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// Strategies: how values are generated.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of values of type `Self::Value`.
    ///
    /// Object-safe core (`gen_one`); combinators are provided methods.
    pub trait Strategy {
        type Value;

        /// Generates one value.
        fn gen_one(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates an intermediate value, then runs the strategy
        /// `f` builds from it.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Boxes the strategy (for heterogeneous unions).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A heap-allocated strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn gen_one(&self, rng: &mut TestRng) -> T {
            (**self).gen_one(rng)
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn gen_one(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` combinator.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;

        fn gen_one(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.gen_one(rng))
        }
    }

    /// `prop_flat_map` combinator.
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;

        fn gen_one(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.gen_one(rng)).gen_one(rng)
        }
    }

    /// Uniform choice between strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn gen_one(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].gen_one(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn gen_one(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn gen_one(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;

        fn gen_one(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::RangeInclusive<f64> {
        type Value = f64;

        fn gen_one(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty strategy range");
            lo + rng.unit_f64() * (hi - lo)
        }
    }

    /// String strategies from regex-like patterns. Real proptest
    /// accepts any regex; this shim supports the one shape the
    /// workspace uses — `\PC{lo,hi}` (printable, non-control chars,
    /// length in `[lo, hi]`) — plus plain literals, and panics on
    /// anything else rather than silently mis-generating.
    impl Strategy for &str {
        type Value = String;

        fn gen_one(&self, rng: &mut TestRng) -> String {
            let meta = ['\\', '{', '}', '[', ']', '(', ')', '*', '+', '?', '|', '.'];
            if !self.chars().any(|c| meta.contains(&c)) {
                return (*self).to_string();
            }
            let rest = self
                .strip_prefix("\\PC{")
                .and_then(|r| r.strip_suffix('}'))
                .unwrap_or_else(|| panic!("proptest shim: unsupported string pattern `{self}`"));
            let (lo, hi) = rest
                .split_once(',')
                .and_then(|(a, b)| Some((a.parse::<u64>().ok()?, b.parse::<u64>().ok()?)))
                .unwrap_or_else(|| panic!("proptest shim: unsupported string pattern `{self}`"));
            let len = lo + rng.below(hi - lo + 1);
            (0..len)
                .map(|_| loop {
                    // Mostly ASCII, sometimes wider code points.
                    let c = match rng.below(10) {
                        0..=6 => (b' ' + rng.below(95) as u8) as char,
                        7 => char::from_u32(0xA1 + rng.below(0x500) as u32).unwrap_or('¿'),
                        8 => char::from_u32(0x4E00 + rng.below(0x1000) as u32).unwrap_or('中'),
                        _ => char::from_u32(0x1F300 + rng.below(0x100) as u32).unwrap_or('🌀'),
                    };
                    if !c.is_control() {
                        break c;
                    }
                })
                .collect()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($n:tt $s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn gen_one(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.gen_one(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (0 A)
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
        (0 A, 1 B, 2 C, 3 D, 4 E)
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() >> 63 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite values only, like proptest's default f64 domain.
            rng.unit_f64() * 2e9 - 1e9
        }
    }

    /// The strategy `any::<T>()` returns.
    pub struct AnyStrategy<T> {
        _marker: std::marker::PhantomData<T>,
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;

        fn gen_one(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Full-range strategy for `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy {
            _marker: std::marker::PhantomData,
        }
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length bounds for [`vec`].
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max_incl: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_incl: n,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_incl: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max_incl: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length in `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn gen_one(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_incl - self.size.min + 1) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.gen_one(rng)).collect()
        }
    }

    /// Generates vectors of `element` values.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Everything a proptest-based test file needs.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Module alias so `prop::collection::vec(...)` resolves.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines `#[test]` functions that run their body over generated
/// inputs. Supports an optional leading
/// `#![proptest_config(ProptestConfig::with_cases(n))]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    (@run ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        #[test]
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            let case_name = concat!(module_path!(), "::", stringify!($name));
            for case in 0..cfg.cases {
                let mut rng = $crate::test_runner::TestRng::for_case(case_name, case);
                $(let $pat = $crate::strategy::Strategy::gen_one(&($strat), &mut rng);)*
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err(e) => {
                        panic!("{case_name} failed at case {case}/{}: {e}", cfg.cases);
                    }
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case unless the two sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), l, r,
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{}\n  left: {:?}\n right: {:?}", format!($($fmt)+), l, r),
            ));
        }
    }};
}

/// Fails the current case if the two sides are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{}` != `{}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l,
            )));
        }
    }};
}

/// Uniform choice among heterogeneous strategies with a common value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_case() {
        use crate::test_runner::TestRng;
        let mut a = TestRng::for_case("x::y", 3);
        let mut b = TestRng::for_case("x::y", 3);
        let mut c = TestRng::for_case("x::y", 4);
        let v = a.next_u64();
        assert_eq!(v, b.next_u64());
        assert_ne!(v, c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        fn ranges_respect_bounds(
            n in 3..10usize,
            x in -4.0f64..4.0,
            b in any::<bool>(),
        ) {
            let _ = b;
            prop_assert!((3..10).contains(&n));
            prop_assert!((-4.0..4.0).contains(&x));
        }

        fn flat_map_vec_and_oneof_compose(
            v in (1..6usize).prop_flat_map(|n| {
                prop::collection::vec((0..n, prop_oneof![Just(1u8), Just(2u8)]), 1..20)
                    .prop_map(move |pairs| (n, pairs))
            }),
        ) {
            let (n, pairs) = v;
            prop_assert!(!pairs.is_empty() && pairs.len() < 20);
            for (i, tag) in pairs {
                prop_assert!(i < n);
                prop_assert!(tag == 1 || tag == 2, "tag {} out of union", tag);
            }
        }
    }
}
