//! Vendored subset of the `rand` 0.8 API (see `vendor/README.md`).
//!
//! Implements the traits and distribution algorithms this workspace
//! actually uses, following the published rand 0.8 algorithms so that
//! seeded generators reproduce the same streams the real crate would:
//! PCG32-based `seed_from_u64`, widening-multiply integer uniforms,
//! `[1, 2)`-mantissa float uniforms, and the fixed-point Bernoulli.

/// Low-level generator interface.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Seedable generator interface.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with the PCG32 stream rand 0.8
    /// uses, so seeds reproduce the real crate's generators.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Stock generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The crate's default seedable generator. Unlike the real
    /// `StdRng` (whose stream is explicitly unstable across rand
    /// versions), this is a SplitMix64 stream — deterministic and
    /// platform-independent, which is all callers here rely on.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut state = 0u64;
            for chunk in seed.chunks_exact(8) {
                state ^= u64::from_le_bytes(chunk.try_into().unwrap());
                state = state.rotate_left(17);
            }
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let b = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&b[..chunk.len()]);
            }
        }
    }
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 mantissa bits mapped to [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        // Compare against the most significant bit (rand 0.8).
        rng.next_u32() & (1 << 31) != 0
    }
}

macro_rules! impl_standard_int {
    ($($t:ty => $m:ident),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.$m() as $t
            }
        }
    )*};
}

impl_standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32, i8 => next_u32,
    i16 => next_u32, i32 => next_u32, u64 => next_u64, i64 => next_u64,
    usize => next_u64, isize => next_u64);

/// Types with a uniform range sampler.
pub trait SampleUniform: Sized + PartialOrd + Copy {
    /// Samples uniformly from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Samples uniformly from `[low, high]`.
    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

/// Lemire-style widening multiply with rejection zone (rand 0.8's
/// `sample_single` for 64-bit-and-under integers).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, range: u64) -> u64 {
    debug_assert!(range > 0);
    let zone = (range << range.leading_zeros()).wrapping_sub(1);
    loop {
        let v = rng.next_u64();
        let m = (v as u128) * (range as u128);
        let lo = m as u64;
        if lo <= zone {
            return (m >> 64) as u64;
        }
    }
}

/// 32-bit variant (rand uses this for small index ranges).
fn uniform_u32<R: RngCore + ?Sized>(rng: &mut R, range: u32) -> u32 {
    debug_assert!(range > 0);
    let zone = (range << range.leading_zeros()).wrapping_sub(1);
    loop {
        let v = rng.next_u32();
        let m = (v as u64) * (range as u64);
        let lo = m as u32;
        if lo <= zone {
            return (m >> 32) as u32;
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "empty range in gen_range");
                let range = high.wrapping_sub(low) as u64;
                low.wrapping_add(uniform_u64(rng, range) as $t)
            }

            fn sample_range_inclusive<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
            ) -> Self {
                assert!(low <= high, "empty range in gen_range");
                let range = (high.wrapping_sub(low) as u64).wrapping_add(1);
                if range == 0 {
                    // Full domain.
                    return Standard::sample(rng);
                }
                low.wrapping_add(uniform_u64(rng, range) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u16, u32, u64, usize, i16, i32, i64, isize);

impl SampleUniform for u8 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "empty range in gen_range");
        low + uniform_u32(rng, (high - low) as u32) as u8
    }

    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low <= high, "empty range in gen_range");
        let range = (high - low) as u32 + 1;
        low + uniform_u32(rng, range) as u8
    }
}

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "empty range in gen_range");
        // rand 0.8: value in [1, 2) from 52 mantissa bits, then
        // `value1_2 * scale + offset` with `offset = low - scale`.
        let scale = high - low;
        let offset = low - scale;
        let value1_2 = f64::from_bits((rng.next_u64() >> 12) | (1023u64 << 52));
        value1_2 * scale + offset
    }

    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low <= high, "empty range in gen_range");
        // rand 0.8 widens the scale so the top of [1, 2) lands on
        // `high` inclusively.
        let scale = (high - low) / (1.0 - f64::EPSILON / 2.0);
        let offset = low - scale;
        let value1_2 = f64::from_bits((rng.next_u64() >> 12) | (1023u64 << 52));
        let v = value1_2 * scale + offset;
        if v > high {
            high
        } else {
            v
        }
    }
}

/// Range argument of [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range_inclusive(rng, *self.start(), *self.end())
    }
}

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
        if p >= 1.0 {
            return true;
        }
        // Fixed-point threshold in 1/2^64 units (rand 0.8 Bernoulli).
        let p_int = (p * (1u128 << 64) as f64) as u64;
        self.next_u64() < p_int
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence helpers (`shuffle`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Index sampler matching rand 0.8's `gen_index`: 32-bit sampling
    /// for bounds that fit (consumes the stream identically).
    fn gen_index<R: RngCore + ?Sized>(rng: &mut R, ubound: usize) -> usize {
        if ubound <= (u32::MAX as usize) + 1 {
            rng.gen_range(0..ubound as u32) as usize
        } else {
            rng.gen_range(0..ubound)
        }
    }

    /// Slice shuffling.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, gen_index(rng, i + 1));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let b = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&b[..chunk.len()]);
            }
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&y));
            let z: f64 = rng.gen_range(f64::EPSILON..=1.0);
            assert!((f64::EPSILON..=1.0).contains(&z));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use super::seq::SliceRandom;
        let mut v: Vec<usize> = (0..100).collect();
        let mut rng = Counter(3);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should move something");
    }
}
