//! Vendored `serde_json` over the shim [`serde::Value`] data model
//! (see `vendor/README.md`): `to_string` / `to_string_pretty` /
//! `from_str` with a complete JSON parser (strings with escapes,
//! nested containers, integer/float numbers). Non-finite floats
//! serialize as `null`.

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// JSON serialization/deserialization error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serializes to human-readable JSON (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

/// Parses a value out of a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(T::from_value(&v)?)
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    let newline = |out: &mut String, d: usize| {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * d));
        }
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                out.push_str(&x.to_string());
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline(out, depth + 1);
                write_value(item, indent, depth + 1, out);
            }
            newline(out, depth);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline(out, depth + 1);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, indent, depth + 1, out);
            }
            newline(out, depth);
            out.push('}');
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn expect_literal(&mut self, lit: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{lit}` at offset {}",
                self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => {
                self.expect_literal("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.expect_literal("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.expect_literal("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(Error::new(format!(
                "unexpected `{}` at offset {}",
                c as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while self.pos < self.bytes.len()
                && self.bytes[self.pos] != b'"'
                && self.bytes[self.pos] != b'\\'
            {
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            // Surrogate pairs are not produced by our
                            // writer; map lone surrogates to U+FFFD.
                            s.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("bad escape sequence")),
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
            // Integer literal too large for 64 bits: fall through to
            // float.
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_containers() {
        let v = Value::Object(vec![
            (
                "a".into(),
                Value::Array(vec![Value::U64(1), Value::F64(2.5)]),
            ),
            ("s".into(), Value::Str("he said \"hi\"\n".into())),
            ("none".into(), Value::Null),
            ("neg".into(), Value::I64(-3)),
        ]);
        for json in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            let back: Value = from_str(&json).unwrap();
            assert_eq!(back, v);
        }
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = Value::Object(vec![("k".into(), Value::U64(1))]);
        assert_eq!(to_string_pretty(&v).unwrap(), "{\n  \"k\": 1\n}");
        assert_eq!(to_string(&v).unwrap(), "{\"k\":1}");
    }

    #[test]
    fn numbers_parse_by_shape() {
        assert_eq!(from_str::<Value>("42").unwrap(), Value::U64(42));
        assert_eq!(from_str::<Value>("-42").unwrap(), Value::I64(-42));
        assert_eq!(from_str::<Value>("4.25e2").unwrap(), Value::F64(425.0));
        // Wider than u64: falls back to float.
        assert_eq!(
            from_str::<Value>("100000000000000000000").unwrap(),
            Value::F64(1e20)
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{\"a\":}").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }
}
