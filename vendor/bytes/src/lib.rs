//! Vendored subset of the `bytes` crate (see `vendor/README.md`).
//!
//! [`Bytes`] is an owned byte buffer with a read cursor; [`BytesMut`]
//! an append-only builder. Only the little-endian accessors this
//! workspace's binary matrix format uses are provided. No shared-slab
//! zero-copy machinery — `slice` copies — which is semantically
//! equivalent for these sizes.

/// Read access with a cursor.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Reads `dst.len()` bytes.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

/// Append access.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

/// Owned immutable byte buffer with a read cursor.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Unread length.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// True when fully consumed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies the given sub-range of the *unread* bytes into a new
    /// buffer.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let start = match range.start_bound() {
            std::ops::Bound::Included(&s) => s,
            std::ops::Bound::Excluded(&s) => s + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            std::ops::Bound::Included(&e) => e + 1,
            std::ops::Bound::Excluded(&e) => e,
            std::ops::Bound::Unbounded => len,
        };
        assert!(start <= end && end <= len, "slice out of bounds");
        Bytes {
            data: self.data[self.pos + start..self.pos + end].to_vec(),
            pos: 0,
        }
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
            pos: 0,
        }
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.remaining(), "buffer underflow");
        dst.copy_from_slice(&self.data[self.pos..self.pos + dst.len()]);
        self.pos += dst.len();
    }
}

/// Growable byte builder.
#[derive(Clone, Debug, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty builder with `cap` reserved bytes.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_le_values() {
        let mut b = BytesMut::with_capacity(32);
        b.put_slice(b"HEAD");
        b.put_u32_le(7);
        b.put_u64_le(1 << 40);
        b.put_f64_le(2.5);
        let mut r = b.freeze();
        assert_eq!(r.remaining(), 4 + 4 + 8 + 8);
        let mut magic = [0u8; 4];
        r.copy_to_slice(&mut magic);
        assert_eq!(&magic, b"HEAD");
        assert_eq!(r.get_u32_le(), 7);
        assert_eq!(r.get_u64_le(), 1 << 40);
        assert_eq!(r.get_f64_le(), 2.5);
        assert!(r.is_empty());
    }

    #[test]
    fn slice_is_relative_to_cursor() {
        let mut r = Bytes::from(vec![0u8, 1, 2, 3, 4, 5]);
        let mut skip = [0u8; 2];
        r.copy_to_slice(&mut skip);
        let s = r.slice(1..3);
        assert_eq!(&s[..], &[3, 4]);
        assert_eq!(&r.slice(..)[..], &[2, 3, 4, 5]);
    }
}
