//! Vendored `crossbeam::thread` scoped-thread API, implemented over
//! `std::thread::scope` (see `vendor/README.md`). Real OS threads —
//! only the scope/join error plumbing is adapted to crossbeam's
//! `Result`-returning shape.

/// Scoped threads.
pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Panic payload type crossbeam reports.
    pub type Payload = Box<dyn Any + Send + 'static>;

    /// A scope handle: spawn borrows non-`'static` data.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle of a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread; a panic surfaces as `Err(payload)`.
        pub fn join(self) -> Result<T, Payload> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope (for
        /// nested spawns), like crossbeam's.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Runs `f` with a scope; all spawned threads are joined before
    /// this returns. A panic escaping `f` itself (not one captured by
    /// an explicit `join`) is returned as `Err(payload)`.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Payload>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn spawn_and_join_in_scope() {
        let data = [1, 2, 3];
        let total = super::thread::scope(|s| {
            let h1 = s.spawn(|_| data.iter().sum::<i32>());
            let h2 = s.spawn(|_| data.len() as i32);
            h1.join().unwrap() + h2.join().unwrap()
        })
        .unwrap();
        assert_eq!(total, 9);
    }

    #[test]
    fn worker_panic_surfaces_in_join() {
        let caught = super::thread::scope(|s| {
            let h = s.spawn(|_| -> i32 { panic!("boom") });
            h.join()
        })
        .unwrap();
        assert!(caught.is_err());
    }
}
