//! Vendored serde facade (see `vendor/README.md`).
//!
//! Instead of serde's visitor-based zero-copy data model, this shim
//! routes everything through an owned [`Value`] tree: `Serialize`
//! converts to a `Value`, `Deserialize` reads one back. The derive
//! macros (re-exported from `serde_derive`) generate the same
//! externally-tagged JSON shapes real serde produces for the types
//! this workspace uses: named-field structs as objects, unit enum
//! variants as strings, struct enum variants as
//! `{"Variant": {fields}}`.

pub use serde_derive::{Deserialize, Serialize};

/// Owned JSON-like value tree — the whole data model of this shim.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Array(Vec<Value>),
    /// Insertion-ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(p) => Some(p),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            Value::I64(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(v) => Some(*v),
            Value::U64(v) if *v <= i64::MAX as u64 => Some(*v as i64),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(v) => Some(*v),
            Value::U64(v) => Some(*v as f64),
            Value::I64(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Looks up a key in an object; `None` for missing keys and
    /// non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|p| p.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

macro_rules! impl_value_eq_int {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                if *other >= 0 {
                    self.as_u64() == Some(*other as u64)
                } else {
                    self.as_i64() == Some(*other as i64)
                }
            }
        }
    )*};
}
impl_value_eq_int!(i8, i16, i32, i64, isize);

macro_rules! impl_value_eq_uint {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                self.as_u64() == Some(*other as u64)
            }
        }
    )*};
}
impl_value_eq_uint!(u8, u16, u32, u64, usize);

/// Deserialization error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    pub fn new(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for DeError {}

/// Conversion into the [`Value`] data model.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Conversion out of the [`Value`] data model.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Field lookup used by derived `Deserialize` impls: a missing key
/// reads as `Null`, so `Option` fields tolerate absence.
pub fn from_field<T: Deserialize>(pairs: &[(String, Value)], key: &str) -> Result<T, DeError> {
    let v = pairs
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .unwrap_or(&NULL);
    T::from_value(v).map_err(|e| DeError::new(format!("field `{key}`: {e}")))
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::new("expected bool"))
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = v
                    .as_u64()
                    .ok_or_else(|| DeError::new("expected unsigned integer"))?;
                <$t>::try_from(raw)
                    .map_err(|_| DeError::new("unsigned integer out of range"))
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = v
                    .as_i64()
                    .ok_or_else(|| DeError::new("expected integer"))?;
                <$t>::try_from(raw)
                    .map_err(|_| DeError::new("integer out of range"))
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            // Non-finite floats serialize as null (like serde_json's
            // lossy modes); read them back as NaN.
            Value::Null => Ok(f64::NAN),
            _ => v.as_f64().ok_or_else(|| DeError::new("expected number")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::new("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        // `&'static str` fields (device-spec catalogs) can only be
        // reconstructed by leaking; these are few and tiny.
        v.as_str()
            .map(|s| &*Box::leak(s.to_owned().into_boxed_str()))
            .ok_or_else(|| DeError::new("expected string"))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::new("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

macro_rules! impl_serde_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let a = v.as_array().ok_or_else(|| DeError::new("expected tuple array"))?;
                const LEN: usize = 0 $(+ { let _ = $n; 1 })+;
                if a.len() != LEN {
                    return Err(DeError::new("tuple length mismatch"));
                }
                Ok(($($t::from_value(&a[$n])?,)+))
            }
        }
    )*};
}
impl_serde_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_lookup_and_compare() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("x".into())),
            ("n".into(), Value::U64(3)),
            ("ts".into(), Value::F64(10.0)),
            ("arr".into(), Value::Array(vec![Value::Bool(true)])),
        ]);
        assert_eq!(v["name"], "x");
        assert_eq!(v["n"], 3);
        assert_eq!(v["n"], 3u64);
        assert_eq!(v["ts"], 10.0);
        assert_eq!(v["arr"][0], true);
        assert_eq!(v["missing"], Value::Null);
    }

    #[test]
    fn option_and_tuple_round_trip() {
        let x: (String, u64) = ("a".into(), 7);
        let v = x.to_value();
        let back: (String, u64) = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, x);
        let none: Option<u32> = Deserialize::from_value(&Value::Null).unwrap();
        assert_eq!(none, None);
        let some: Option<u32> = Deserialize::from_value(&Value::U64(9)).unwrap();
        assert_eq!(some, Some(9));
    }
}
