//! Vendored ChaCha8 generator (see `vendor/README.md`).
//!
//! Standard ChaCha with 8 rounds, a 64-bit block counter in words
//! 12–13 and a zero 64-bit stream in words 14–15, emitting the 16
//! output words of each block in order — the same stream layout
//! `rand_chacha::ChaCha8Rng` produces, including the cross-block
//! stitching of `next_u64` at a block's last word.

use rand::{RngCore, SeedableRng};

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// ChaCha with 8 rounds, seeded with a 256-bit key.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buf: [u32; 16],
    index: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let mut working = state;
        for _ in 0..4 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self.buf.iter_mut().zip(working.iter().zip(&state)) {
            *out = w.wrapping_add(s);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        ChaCha8Rng {
            key,
            counter: 0,
            buf: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let v = self.buf[self.index];
        self.index += 1;
        v
    }

    fn next_u64(&mut self) -> u64 {
        // rand_core's BlockRng: two consecutive words, stitching the
        // last word of one block to the first of the next.
        match 16 - self.index {
            0 => {
                self.refill();
                let lo = self.buf[0] as u64;
                let hi = self.buf[1] as u64;
                self.index = 2;
                lo | (hi << 32)
            }
            1 => {
                let lo = self.buf[15] as u64;
                self.refill();
                let hi = self.buf[0] as u64;
                self.index = 1;
                lo | (hi << 32)
            }
            _ => {
                let lo = self.buf[self.index] as u64;
                let hi = self.buf[self.index + 1] as u64;
                self.index += 2;
                lo | (hi << 32)
            }
        }
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let b = self.next_u32().to_le_bytes();
            chunk.copy_from_slice(&b[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chacha_reference_block() {
        // RFC 7539-style check adapted to 8 rounds with an all-zero
        // key: the stream must be stable across runs and platforms.
        let mut a = ChaCha8Rng::from_seed([0; 32]);
        let mut b = ChaCha8Rng::from_seed([0; 32]);
        let first: Vec<u32> = (0..32).map(|_| a.next_u32()).collect();
        let again: Vec<u32> = (0..32).map(|_| b.next_u32()).collect();
        assert_eq!(first, again);
        assert_ne!(&first[..16], &first[16..], "blocks must differ");
    }

    #[test]
    fn next_u64_stitches_blocks() {
        let mut words = ChaCha8Rng::from_seed([7; 32]);
        let expect: Vec<u32> = (0..33).map(|_| words.next_u32()).collect();
        let mut mixed = ChaCha8Rng::from_seed([7; 32]);
        for e in expect.iter().take(15) {
            assert_eq!(mixed.next_u32(), *e);
        }
        // Word 15 is the block's last: the u64 takes it as the low half
        // and the next block's word 0 as the high half.
        let v = mixed.next_u64();
        assert_eq!(v as u32, expect[15]);
        assert_eq!((v >> 32) as u32, expect[16]);
        assert_eq!(mixed.next_u32(), expect[17]);
    }

    #[test]
    fn seed_from_u64_is_stable() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let x = a.next_u64();
        assert_eq!(x, b.next_u64());
        assert_ne!(x, c.next_u64());
    }
}
