//! Vendored `#[derive(Serialize)]` / `#[derive(Deserialize)]` (see
//! `vendor/README.md`).
//!
//! Parses the item's token stream by hand (no syn/quote) and emits
//! impls of the shim `serde::Serialize` / `serde::Deserialize` traits,
//! which convert through `serde::Value`. Supported shapes — the ones
//! this workspace uses:
//!
//! - structs with named fields (any visibility, lifetime generics OK)
//! - enums with unit variants and/or named-field (struct) variants
//!
//! Serde attributes (`#[serde(...)]`) are not supported and the
//! workspace uses none.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed shape of the derive target.
enum Item {
    Struct {
        name: String,
        generics: String,
        fields: Vec<String>,
    },
    Enum {
        name: String,
        /// `(variant_name, named_fields)`; empty fields = unit variant.
        variants: Vec<(String, Vec<String>)>,
    },
}

/// Skips attributes (`#[...]`, including doc comments) and visibility
/// (`pub`, `pub(...)`) at the cursor.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#` then the bracket group.
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return i,
        }
    }
}

/// Parses the field names of a named-field body (`{ a: T, b: U }`).
fn parse_named_fields(body: &[TokenTree]) -> Vec<String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < body.len() {
        i = skip_attrs_and_vis(body, i);
        let Some(TokenTree::Ident(name)) = body.get(i) else {
            break;
        };
        fields.push(name.to_string());
        i += 1;
        // Expect `:`, then skip the type up to a top-level `,`,
        // tracking angle-bracket depth (groups nest on their own).
        debug_assert!(matches!(body.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ':'));
        i += 1;
        let mut angle = 0i32;
        while i < body.len() {
            match &body[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Parses the variants of an enum body.
fn parse_variants(body: &[TokenTree]) -> Vec<(String, Vec<String>)> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < body.len() {
        i = skip_attrs_and_vis(body, i);
        let Some(TokenTree::Ident(name)) = body.get(i) else {
            break;
        };
        let name = name.to_string();
        i += 1;
        let mut fields = Vec::new();
        if let Some(TokenTree::Group(g)) = body.get(i) {
            match g.delimiter() {
                Delimiter::Brace => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    fields = parse_named_fields(&inner);
                    i += 1;
                }
                Delimiter::Parenthesis => {
                    panic!("serde shim derive: tuple enum variants are not supported");
                }
                _ => {}
            }
        }
        variants.push((name, fields));
        // Skip an optional discriminant and the trailing comma.
        while i < body.len() {
            if let TokenTree::Punct(p) = &body[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde shim derive: expected struct/enum, got {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde shim derive: expected item name, got {other}"),
    };
    i += 1;
    // Everything up to the body group is the generics (lifetimes only
    // in this workspace; copied verbatim onto the impl).
    let mut generics = String::new();
    let body = loop {
        match &tokens[i] {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                break g.stream().into_iter().collect::<Vec<_>>();
            }
            TokenTree::Punct(p) if p.as_char() == ';' => {
                panic!("serde shim derive: unit/tuple structs are not supported");
            }
            tok => {
                generics.push_str(&tok.to_string());
                i += 1;
            }
        }
    };
    match kind.as_str() {
        "struct" => Item::Struct {
            name,
            generics,
            fields: parse_named_fields(&body),
        },
        "enum" => Item::Enum {
            name,
            variants: parse_variants(&body),
        },
        other => panic!("serde shim derive: unsupported item kind `{other}`"),
    }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let out = match parse_item(input) {
        Item::Struct {
            name,
            generics,
            fields,
        } => {
            let pairs: String = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})),"))
                .collect();
            format!(
                "impl{generics} ::serde::Serialize for {name}{generics} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(vec![{pairs}])\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|(v, fields)| {
                    if fields.is_empty() {
                        format!("{name}::{v} => ::serde::Value::Str(\"{v}\".to_string()),")
                    } else {
                        let binds = fields.join(", ");
                        let pairs: String = fields
                            .iter()
                            .map(|f| {
                                format!("(\"{f}\".to_string(), ::serde::Serialize::to_value({f})),")
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => ::serde::Value::Object(vec![\
                                 (\"{v}\".to_string(), ::serde::Value::Object(vec![{pairs}])),\
                             ]),"
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    out.parse()
        .expect("serde shim derive: generated impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let out = match parse_item(input) {
        Item::Struct {
            name,
            generics,
            fields,
        } => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::from_field(pairs, \"{f}\")?,"))
                .collect();
            format!(
                "impl{generics} ::serde::Deserialize for {name}{generics} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         let pairs = v.as_object().ok_or_else(|| \
                             ::serde::DeError::new(\"expected object for {name}\"))?;\n\
                         ::std::result::Result::Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|(_, fields)| fields.is_empty())
                .map(|(v, _)| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            let tagged_arms: String = variants
                .iter()
                .filter(|(_, fields)| !fields.is_empty())
                .map(|(v, fields)| {
                    let inits: String = fields
                        .iter()
                        .map(|f| format!("{f}: ::serde::from_field(pairs, \"{f}\")?,"))
                        .collect();
                    format!(
                        "\"{v}\" => {{\n\
                             let pairs = inner.as_object().ok_or_else(|| \
                                 ::serde::DeError::new(\"expected object for {name}::{v}\"))?;\n\
                             ::std::result::Result::Ok({name}::{v} {{ {inits} }})\n\
                         }}"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {unit_arms}\n\
                                 other => ::std::result::Result::Err(::serde::DeError::new(\
                                     format!(\"unknown {name} variant `{{other}}`\"))),\n\
                             }},\n\
                             ::serde::Value::Object(tagged) if tagged.len() == 1 => {{\n\
                                 let (tag, inner) = &tagged[0];\n\
                                 let _ = inner;\n\
                                 match tag.as_str() {{\n\
                                     {tagged_arms}\n\
                                     other => ::std::result::Result::Err(::serde::DeError::new(\
                                         format!(\"unknown {name} variant `{{other}}`\"))),\n\
                                 }}\n\
                             }}\n\
                             _ => ::std::result::Result::Err(::serde::DeError::new(\
                                 \"expected variant for {name}\")),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    out.parse()
        .expect("serde shim derive: generated impl parses")
}
