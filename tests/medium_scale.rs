//! Medium-scale stress run — ignored by default (several minutes);
//! run with `cargo test --release -- --ignored medium_scale`.

use oocgemm::{OocConfig, OutOfCoreGpu};
use sparse::gen::{SuiteMatrix, SuiteScale};

#[test]
#[ignore = "several minutes; run explicitly for stress coverage"]
fn medium_scale_nlp_full_pipeline() {
    let m = SuiteMatrix::Nlp.generate(SuiteScale::Medium);
    assert!(
        m.n_rows() > 100_000,
        "medium scale should be substantially larger"
    );
    let nnz_c = sparse::stats::symbolic_nnz(&m, &m);
    let device = ((nnz_c * 12) as f64 / 1.78) as u64;
    let run = OutOfCoreGpu::new(OocConfig::with_device_memory(device))
        .multiply(&m, &m)
        .expect("medium-scale run");
    run.timeline.validate().unwrap();
    assert_eq!(run.c.nnz() as u64, nnz_c);
    assert!(oocgemm::verify_product(&m, &m, &run.c).is_ok());
}
