//! Reproducibility: generators are byte-stable, simulated timelines are
//! exactly repeatable, and results are independent of thread count.

use oocgemm::{Hybrid, HybridConfig, OocConfig, OutOfCoreGpu};
use sparse::gen::{suite, SuiteMatrix, SuiteScale};

#[test]
fn suite_generation_is_byte_stable() {
    let a = suite(SuiteScale::Tiny);
    let b = suite(SuiteScale::Tiny);
    for ((id_a, m_a), (id_b, m_b)) in a.iter().zip(&b) {
        assert_eq!(id_a, id_b);
        assert_eq!(m_a, m_b, "{} not reproducible", id_a.abbr());
    }
}

#[test]
fn simulated_times_are_exactly_repeatable() {
    let m = SuiteMatrix::Wiki0925.generate(SuiteScale::Tiny);
    let run = || {
        OutOfCoreGpu::new(OocConfig::with_device_memory(1 << 20))
            .multiply(&m, &m)
            .unwrap()
    };
    let r1 = run();
    let r2 = run();
    assert_eq!(r1.sim_ns, r2.sim_ns);
    assert_eq!(r1.order, r2.order);
    assert_eq!(r1.timeline.records.len(), r2.timeline.records.len());
    for (a, b) in r1.timeline.records.iter().zip(&r2.timeline.records) {
        assert_eq!((a.start, a.end, &a.label), (b.start, b.end, &b.label));
    }
    assert!(
        r1.c.approx_eq(&r2.c, 0.0),
        "numeric results must be bit-identical"
    );
}

#[test]
fn hybrid_times_are_exactly_repeatable() {
    let m = SuiteMatrix::Stokes.generate(SuiteScale::Tiny);
    let cfg = || HybridConfig {
        gpu: OocConfig::with_device_memory(1 << 21),
        ..HybridConfig::paper_default()
    };
    let r1 = Hybrid::new(cfg()).multiply(&m, &m).unwrap();
    let r2 = Hybrid::new(cfg()).multiply(&m, &m).unwrap();
    assert_eq!(r1.sim_ns, r2.sim_ns);
    assert_eq!(r1.gpu_ns, r2.gpu_ns);
    assert_eq!(r1.cpu_ns, r2.cpu_ns);
    assert_eq!(r1.num_gpu_chunks, r2.num_gpu_chunks);
}

#[test]
fn results_independent_of_thread_count() {
    // The parallel executors must produce the same structure regardless
    // of worker count; values agree to tolerance (summation order
    // inside a row is fixed by the algorithm, so exact equality holds).
    let m = SuiteMatrix::Wiki1104.generate(SuiteScale::Tiny);
    let wide = cpu_spgemm::parallel_hash::multiply(&m, &m).unwrap();
    let narrow_pool = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .unwrap();
    let narrow = narrow_pool.install(|| cpu_spgemm::parallel_hash::multiply(&m, &m).unwrap());
    assert_eq!(wide.row_offsets(), narrow.row_offsets());
    assert_eq!(wide.col_ids(), narrow.col_ids());
    assert!(wide.approx_eq(&narrow, 1e-12));
}

#[test]
fn ratio_search_is_deterministic() {
    let m = SuiteMatrix::Uk2002.generate(SuiteScale::Tiny);
    let cfg = || HybridConfig {
        gpu: OocConfig::with_device_memory(1 << 21),
        ..HybridConfig::paper_default()
    };
    let s1 = Hybrid::new(cfg()).ratio_search(&m, &m).unwrap();
    let s2 = Hybrid::new(cfg()).ratio_search(&m, &m).unwrap();
    assert_eq!(s1.per_g, s2.per_g);
    assert_eq!(s1.best_g, s2.best_g);
}
