//! End-to-end pipeline tests on the (tiny-scale) evaluation suite:
//! every suite matrix goes through planning, partitioning, the
//! asynchronous pipeline, and assembly, with physical invariants
//! checked on the simulated timeline.

use gpu_sim::OpKind;
use oocgemm::{ExecMode, Hybrid, HybridConfig, OocConfig, OutOfCoreGpu};
use sparse::gen::{suite, SuiteScale};

/// Device size forcing genuine out-of-core execution per matrix.
fn device_for(m: &sparse::CsrMatrix) -> u64 {
    let nnz_c = sparse::stats::symbolic_nnz(m, m);
    ((nnz_c * 12) as f64 / 3.5) as u64
}

#[test]
fn tiny_suite_full_pipeline() {
    for (id, m) in suite(SuiteScale::Tiny) {
        let device = device_for(&m).max(1 << 18);
        let cfg = OocConfig::with_device_memory(device);
        let run = OutOfCoreGpu::new(cfg)
            .multiply(&m, &m)
            .unwrap_or_else(|e| panic!("{} failed: {e}", id.abbr()));

        // Real result checked against the CPU baseline.
        let expect = cpu_spgemm::parallel_hash::multiply(&m, &m).unwrap();
        assert!(run.c.approx_eq(&expect, 1e-9), "{} wrong result", id.abbr());

        // Timeline physics.
        run.timeline
            .validate()
            .unwrap_or_else(|e| panic!("{}: {e}", id.abbr()));

        // The D2H engine must carry at least the whole output.
        let d2h: u64 = run
            .timeline
            .of_kind(OpKind::CopyD2H)
            .map(|r| r.payload)
            .sum();
        assert!(
            d2h >= run.nnz_c * 12,
            "{}: transferred {} bytes < output {}",
            id.abbr(),
            d2h,
            run.nnz_c * 12
        );

        // Async pipelines pre-allocate: alloc barriers come only from
        // pool setup/teardown (at most two per pipeline pass — the
        // speculative default routes through the recovering pipeline,
        // which mallocs and frees its pool each pass and runs one
        // extra pass per recovery action), never per chunk.
        let barriers = run.timeline.of_kind(OpKind::AllocBarrier).count() as u64;
        let passes = 1
            + run.recovery.estimate_overflows
            + run.recovery.resplits
            + run.recovery.retries
            + run.recovery.demotions;
        assert!(
            barriers >= 1 && barriers <= 2 * passes,
            "{}: unexpected allocation barriers ({barriers} for {passes} passes)",
            id.abbr()
        );

        // Transfers are a major share even at tiny scale (the full
        // Fig 4 regime, 77-90%, needs Small-scale payloads; tiny
        // matrices are latency-dominated).
        assert!(
            run.transfer_fraction() > 0.2,
            "{}: transfer fraction suspiciously low ({})",
            id.abbr(),
            run.transfer_fraction()
        );
    }
}

#[test]
fn tiny_suite_async_never_slower_than_sync() {
    for (id, m) in suite(SuiteScale::Tiny) {
        let device = device_for(&m).max(1 << 18);
        let asyn = OutOfCoreGpu::new(OocConfig::with_device_memory(device))
            .multiply(&m, &m)
            .unwrap();
        let plan = (asyn.plan.row_panels(), asyn.plan.col_panels());
        let sync = OutOfCoreGpu::new(
            OocConfig::with_device_memory(device)
                .panels(plan.0, plan.1)
                .mode(ExecMode::Sync),
        )
        .multiply(&m, &m)
        .unwrap();
        assert!(
            asyn.sim_ns <= sync.sim_ns,
            "{}: async {} slower than sync {}",
            id.abbr(),
            asyn.sim_ns,
            sync.sim_ns
        );
    }
}

#[test]
fn tiny_suite_hybrid_never_slower_than_gpu_only() {
    for (id, m) in suite(SuiteScale::Tiny) {
        let device = device_for(&m).max(1 << 18);
        let gpu = OutOfCoreGpu::new(OocConfig::with_device_memory(device))
            .multiply(&m, &m)
            .unwrap();
        let cfg = HybridConfig {
            gpu: OocConfig::with_device_memory(device)
                .panels(gpu.plan.row_panels(), gpu.plan.col_panels()),
            ..HybridConfig::paper_default()
        };
        let hybrid = Hybrid::new(cfg).multiply(&m, &m).unwrap();
        // The 65% split can be mildly suboptimal on tiny chunk grids,
        // but it must never lose badly to GPU-only.
        assert!(
            (hybrid.sim_ns as f64) < 1.1 * gpu.sim_ns as f64,
            "{}: hybrid {} much slower than GPU-only {}",
            id.abbr(),
            hybrid.sim_ns,
            gpu.sim_ns
        );
    }
}

#[test]
fn planner_respects_device_budget_end_to_end() {
    let (_, m) = suite(SuiteScale::Tiny).remove(6); // nlp
    for shift in [18u32, 19, 20, 21] {
        let device = 1u64 << shift;
        match OutOfCoreGpu::new(OocConfig::with_device_memory(device)).multiply(&m, &m) {
            Ok(run) => {
                // More memory must never force *more* chunks.
                assert!(run.plan.num_chunks() >= 1);
            }
            Err(oocgemm::OocError::Planning(_)) => {
                assert!(device <= 1 << 18, "planning failed at generous budget");
            }
            Err(e) => panic!("unexpected error at {device}: {e}"),
        }
    }
}
