//! Integration tests of the `spgemm` command-line tool, driven through
//! the real binary.

use std::path::PathBuf;
use std::process::Command;

fn spgemm() -> Command {
    Command::new(env!("CARGO_BIN_EXE_spgemm"))
}

fn temp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("oocgemm_cli_{}_{name}", std::process::id()))
}

#[test]
fn generated_input_runs_every_executor() {
    for executor in [
        "cpu",
        "gpu-sync",
        "gpu-async",
        "hybrid",
        "multi-gpu:2",
        "unified",
    ] {
        let out = spgemm()
            .args(["--gen", "rmat:10:8000:7", "--executor", executor])
            .output()
            .expect("spawn spgemm");
        assert!(
            out.status.success(),
            "executor {executor} failed:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            stdout.contains("GFLOPS"),
            "{executor}: no GFLOPS line:\n{stdout}"
        );
        assert!(
            stdout.contains("nnz(C)"),
            "{executor}: no result size:\n{stdout}"
        );
    }
}

#[test]
fn mtx_roundtrip_through_cli() {
    // Write an input, multiply via CLI, read the result back, verify.
    let a = sparse::gen::erdos_renyi(80, 80, 0.06, 3);
    let input = temp("in.mtx");
    let output = temp("out.mtx");
    sparse::io::write_matrix_market(&input, &a).unwrap();

    let out = spgemm()
        .args([
            "--input",
            input.to_str().unwrap(),
            "--executor",
            "gpu-async",
            "--out",
            output.to_str().unwrap(),
        ])
        .output()
        .expect("spawn spgemm");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let c = sparse::io::read_matrix_market(&output).unwrap();
    let expect = cpu_spgemm::reference::multiply(&a, &a).unwrap();
    assert!(c.approx_eq(&expect, 1e-9), "CLI result diverged");
    std::fs::remove_file(&input).ok();
    std::fs::remove_file(&output).ok();
}

#[test]
fn trace_output_is_valid_chrome_json() {
    let trace = temp("trace.json");
    let out = spgemm()
        .args([
            "--gen",
            "rmat:9:4000:1",
            "--executor",
            "gpu-async",
            "--trace",
            trace.to_str().unwrap(),
        ])
        .output()
        .expect("spawn spgemm");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = std::fs::read_to_string(&trace).unwrap();
    let events: serde_json::Value = serde_json::from_str(&json).unwrap();
    let events = events.as_array().unwrap();
    assert!(!events.is_empty());
    assert!(events.iter().all(|e| e["ph"] == "X"));
    std::fs::remove_file(&trace).ok();
}

#[test]
fn suite_input_and_auto_ratio() {
    let out = spgemm()
        .args([
            "--suite",
            "nlp:tiny",
            "--executor",
            "hybrid",
            "--ratio",
            "auto",
        ])
        .output()
        .expect("spawn spgemm");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("assignment:"),
        "no hybrid assignment line:\n{stdout}"
    );
}

#[test]
fn bad_arguments_exit_nonzero() {
    for args in [
        vec!["--executor", "warp-drive"],
        vec!["--gen", "not-a-spec"],
        vec!["--suite", "not-a-matrix"],
    ] {
        let out = spgemm().args(&args).output().expect("spawn spgemm");
        assert!(
            !out.status.success(),
            "args {args:?} unexpectedly succeeded"
        );
    }
}

#[test]
fn estimator_flags_run_and_report() {
    for kind in ["exact", "upper-bound", "row-sample", "hash-sketch"] {
        let out = spgemm()
            .args(["--gen", "rmat:10:8000:7", "--estimator", kind])
            .output()
            .expect("spawn spgemm");
        assert!(
            out.status.success(),
            "--estimator {kind}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        if kind == "exact" {
            assert!(!stdout.contains("estimator:"), "{stdout}");
        } else {
            assert!(
                stdout.contains(&format!("estimator: {kind}")),
                "no estimator line for {kind}:\n{stdout}"
            );
        }
    }
}

#[test]
fn host_fault_and_budget_flags_run_and_report() {
    let out = spgemm()
        .args([
            "--gen",
            "rmat:10:8000:7",
            "--executor",
            "gpu-async",
            "--host-fault-seed",
            "11",
            "--host-fault-rate",
            "0.3",
            "--fault-seed",
            "11",
            "--fault-rate",
            "0.1",
            "--deadline-ns",
            "900000000000",
        ])
        .output()
        .expect("spawn spgemm");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("host fault injection: seed 11"),
        "no host-fault line:\n{stdout}"
    );
    assert!(
        stdout.contains("run budget: 900000000000 ns"),
        "no budget line:\n{stdout}"
    );
    assert!(
        stdout.contains("recovery:") && stdout.contains("host faults"),
        "no recovery summary:\n{stdout}"
    );
}

#[test]
fn unmeetable_deadline_is_a_clean_error() {
    // A 1 ns budget cannot be met; the executor must return the
    // DeadlineExceeded error (exit 1 with a message), never hang or
    // panic.
    let out = spgemm()
        .args([
            "--gen",
            "rmat:10:8000:7",
            "--executor",
            "gpu-async",
            "--deadline-ns",
            "1",
        ])
        .output()
        .expect("spawn spgemm");
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("deadline exceeded"),
        "wrong failure: {stderr}"
    );
}

#[test]
fn bad_supervision_flags_exit_2() {
    for args in [
        vec!["--gen", "rmat:10:8000:7", "--host-fault-rate", "NaN"],
        vec!["--gen", "rmat:10:8000:7", "--host-fault-rate", "-0.5"],
        vec!["--gen", "rmat:10:8000:7", "--host-fault-rate", "1.5"],
        vec!["--gen", "rmat:10:8000:7", "--host-fault-rate", "bogus"],
        vec!["--gen", "rmat:10:8000:7", "--host-fault-seed", "-3"],
        vec!["--gen", "rmat:10:8000:7", "--deadline-ns", "0"],
        vec!["--gen", "rmat:10:8000:7", "--deadline-ns", "-1"],
        vec!["--gen", "rmat:10:8000:7", "--deadline-ns", "bogus"],
    ] {
        let out = spgemm().args(&args).output().expect("spawn spgemm");
        assert_eq!(
            out.status.code(),
            Some(2),
            "args {args:?} must exit 2, stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
}

#[test]
fn bad_estimator_flags_exit_2() {
    for args in [
        vec!["--gen", "rmat:10:8000:7", "--estimator", "crystal-ball"],
        vec!["--gen", "rmat:10:8000:7", "--sample-rate", "0"],
        vec!["--gen", "rmat:10:8000:7", "--sample-rate", "1.5"],
        vec!["--gen", "rmat:10:8000:7", "--sample-rate", "bogus"],
        vec!["--gen", "rmat:10:8000:7", "--headroom", "0.5"],
        vec!["--gen", "rmat:10:8000:7", "--headroom", "inf"],
        vec!["--gen", "rmat:10:8000:7", "--headroom", "bogus"],
    ] {
        let out = spgemm().args(&args).output().expect("spawn spgemm");
        assert_eq!(
            out.status.code(),
            Some(2),
            "args {args:?} must exit 2, stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
}
