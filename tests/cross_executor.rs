//! Cross-crate integration: every executor in the workspace computes
//! the same product on matrices from every generator family.

use cpu_spgemm::{dense_blocked, mkl_like, parallel_hash, reference};
use oocgemm::{ExecMode, Hybrid, HybridConfig, OocConfig, OutOfCoreGpu};
use sparse::gen::{erdos_renyi, grid2d_stencil, locality_graph, rmat, RmatConfig};
use sparse::CsrMatrix;

fn fixtures() -> Vec<(&'static str, CsrMatrix)> {
    vec![
        ("erdos", erdos_renyi(300, 300, 0.04, 1)),
        ("rmat", rmat(RmatConfig::skewed(9, 6000), 2)),
        ("stencil", grid2d_stencil(20, 20, 2, 3)),
        ("locality", locality_graph(400, 10.0, 12, 0.02, 4)),
    ]
}

fn ooc_config() -> OocConfig {
    OocConfig::with_device_memory(1 << 18)
}

#[test]
fn all_executors_agree() {
    for (name, a) in fixtures() {
        let expect = reference::multiply(&a, &a).unwrap();

        let got = parallel_hash::multiply(&a, &a).unwrap();
        assert!(
            got.approx_eq(&expect, 1e-9),
            "parallel_hash diverged on {name}"
        );

        let got = dense_blocked::multiply_with_width(&a, &a, 64).unwrap();
        assert!(
            got.approx_eq(&expect, 1e-9),
            "dense_blocked diverged on {name}"
        );

        let got = mkl_like::multiply(&a, &a).unwrap();
        assert!(got.approx_eq(&expect, 1e-9), "mkl_like diverged on {name}");

        let got = OutOfCoreGpu::new(ooc_config()).multiply(&a, &a).unwrap();
        assert!(
            got.c.approx_eq(&expect, 1e-9),
            "ooc async diverged on {name}"
        );
        assert!(
            got.plan.num_chunks() > 1,
            "{name} was not actually partitioned"
        );

        let got = OutOfCoreGpu::new(ooc_config().mode(ExecMode::Sync))
            .multiply(&a, &a)
            .unwrap();
        assert!(
            got.c.approx_eq(&expect, 1e-9),
            "ooc sync diverged on {name}"
        );

        for ratio in [0.0, 0.35, 0.65, 1.0] {
            let cfg = HybridConfig {
                gpu: ooc_config(),
                ..HybridConfig::paper_default()
            }
            .ratio(ratio);
            let got = Hybrid::new(cfg).multiply(&a, &a).unwrap();
            assert!(
                got.c.approx_eq(&expect, 1e-9),
                "hybrid(ratio={ratio}) diverged on {name}"
            );
        }
    }
}

#[test]
fn rectangular_chain_association() {
    // (A·B)·C == A·(B·C) across executors and shapes.
    let a = erdos_renyi(120, 90, 0.06, 5);
    let b = erdos_renyi(90, 150, 0.06, 6);
    let c = erdos_renyi(150, 80, 0.06, 7);
    let ooc = OutOfCoreGpu::new(OocConfig::with_device_memory(1 << 18));

    let ab = ooc.multiply(&a, &b).unwrap().c;
    let ab_c = ooc.multiply(&ab, &c).unwrap().c;
    let bc = parallel_hash::multiply(&b, &c).unwrap();
    let a_bc = reference::multiply(&a, &bc).unwrap();
    assert!(ab_c.approx_eq(&a_bc, 1e-8), "associativity violated");
}

#[test]
fn ooc_handles_empty_and_identity() {
    let ooc = OutOfCoreGpu::new(OocConfig::with_device_memory(1 << 20));
    let z = CsrMatrix::zeros(50, 50);
    let run = ooc.multiply(&z, &z).unwrap();
    assert_eq!(run.c.nnz(), 0);

    let i = CsrMatrix::identity(200);
    let a = erdos_renyi(200, 200, 0.05, 8);
    let run = ooc.multiply(&i, &a).unwrap();
    assert_eq!(run.c, a);
}

#[test]
fn partitioner_choice_does_not_change_results() {
    use sparse::partition::ColPartitioner;
    let a = rmat(RmatConfig::mild(9, 5000), 9);
    let mut base = ooc_config();
    let mut results = Vec::new();
    for strat in [
        ColPartitioner::Naive,
        ColPartitioner::Cursor,
        ColPartitioner::ParallelPrefixSum,
        ColPartitioner::ParallelCursor,
    ] {
        base.col_partitioner = strat;
        let run = OutOfCoreGpu::new(base.clone()).multiply(&a, &a).unwrap();
        results.push((run.sim_ns, run.c));
    }
    // Identical plans and descriptors => identical simulated times and
    // identical numeric results.
    for pair in results.windows(2) {
        assert_eq!(pair[0].0, pair[1].0);
        assert!(pair[0].1.approx_eq(&pair[1].1, 0.0));
    }
}
