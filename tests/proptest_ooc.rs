//! Property-based end-to-end tests of the out-of-core framework:
//! arbitrary matrices, arbitrary device budgets, arbitrary panel
//! grids — results always match the reference, timelines always obey
//! the hardware invariants.

use gpu_sim::OpKind;
use oocgemm::{ExecMode, Hybrid, HybridConfig, OocConfig, OutOfCoreGpu, SchedulerKind};
use proptest::prelude::*;
use sparse::{CooMatrix, CsrMatrix};

fn arb_square(max_n: usize, max_entries: usize) -> impl Strategy<Value = CsrMatrix> {
    (8..=max_n).prop_flat_map(move |n| {
        prop::collection::vec((0..n, 0..n, 0.1f64..10.0), 1..=max_entries).prop_map(
            move |entries| {
                let mut coo = CooMatrix::new(n, n);
                for (i, j, v) in entries {
                    coo.push(i, j, v).unwrap();
                }
                coo.to_csr()
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn ooc_matches_reference_for_any_grid(
        a in arb_square(60, 400),
        k_r in 1usize..5,
        k_c in 1usize..5,
        reorder in any::<bool>(),
        sync in any::<bool>(),
    ) {
        let mode = if sync { ExecMode::Sync } else { ExecMode::Async };
        let cfg = OocConfig::with_device_memory(64 << 20)
            .panels(k_r, k_c)
            .mode(mode)
            .reorder(reorder);
        let run = OutOfCoreGpu::new(cfg).multiply(&a, &a).unwrap();
        let expect = cpu_spgemm::reference::multiply(&a, &a).unwrap();
        prop_assert!(run.c.approx_eq(&expect, 1e-9));
        prop_assert!(run.timeline.validate().is_ok());
        // Every chunk's output crosses the D2H engine exactly once
        // (possibly split in two portions).
        let d2h: u64 = run.timeline.of_kind(OpKind::CopyD2H).map(|r| r.payload).sum();
        prop_assert!(d2h >= run.nnz_c * 12);
    }

    #[test]
    fn hybrid_matches_reference_for_any_ratio(
        a in arb_square(50, 300),
        ratio in 0.0f64..=1.0,
        reorder in any::<bool>(),
    ) {
        let cfg = HybridConfig {
            gpu: OocConfig::with_device_memory(64 << 20).panels(2, 3),
            gpu_ratio: ratio,
            reorder_assignment: reorder,
            scheduler: SchedulerKind::WorkStealing,
        };
        let run = Hybrid::new(cfg.clone()).multiply(&a, &a).unwrap();
        let expect = cpu_spgemm::reference::multiply(&a, &a).unwrap();
        prop_assert!(run.c.approx_eq(&expect, 1e-9));
        prop_assert_eq!(run.num_gpu_chunks + run.num_cpu_chunks, 6);
        prop_assert_eq!(run.sim_ns, run.gpu_ns.max(run.cpu_ns));
        // Both schedulers produce bit-identical C for any ratio hint,
        // and the claim/steal accounting covers every chunk once.
        let st = Hybrid::new(cfg.scheduler(SchedulerKind::Static)).multiply(&a, &a).unwrap();
        prop_assert_eq!(&run.c, &st.c);
        prop_assert_eq!(
            (run.scheduler.gpu_claims + run.scheduler.cpu_steals) as usize,
            6
        );
    }

    #[test]
    fn planner_budget_is_respected(
        a in arb_square(80, 600),
        budget_shift in 17u32..22,
    ) {
        let budget = 1u64 << budget_shift;
        let planner = match oocgemm::Planner::new(&a, &a) {
            Ok(p) => p,
            Err(_) => return Ok(()),
        };
        match planner.auto(budget) {
            Ok(plan) => {
                prop_assert!(planner.working_set_bytes(&plan) <= budget);
                // The plan must actually run within that device size.
                let cfg = OocConfig::with_device_memory(budget)
                    .panels(plan.row_panels(), plan.col_panels());
                let run = OutOfCoreGpu::new(cfg).multiply(&a, &a).unwrap();
                prop_assert!(run.timeline.validate().is_ok());
            }
            Err(oocgemm::OocError::Planning(_)) => {} // budget genuinely too small
            Err(e) => return Err(TestCaseError::fail(format!("unexpected: {e}"))),
        }
    }

    #[test]
    fn chunk_flops_partition_total(
        a in arb_square(60, 400),
        k_r in 1usize..4,
        k_c in 1usize..4,
    ) {
        let planner = oocgemm::Planner::new(&a, &a).unwrap();
        let plan = planner.fixed(k_r, k_c).unwrap();
        let panels = sparse::partition::ColPartitioner::Cursor
            .partition(&a, &plan.col_ranges);
        let grid = oocgemm::ChunkGrid::compute(&a, &plan, &panels);
        prop_assert_eq!(grid.total_flops(), sparse::stats::total_flops(&a, &a));
        // The ratio split covers all chunks exactly once.
        let order = grid.sorted_desc();
        let (gpu, cpu) = oocgemm::ChunkGrid::split_by_ratio(&order, 0.65);
        prop_assert_eq!(gpu.len() + cpu.len(), grid.len());
        let gpu_flops: u64 = gpu.iter().map(|c| c.flops).sum();
        let total = grid.total_flops();
        if total > 0 {
            // The prefix reaches the ratio, and removing its last chunk
            // would fall below it (minimality).
            prop_assert!(gpu_flops as f64 / total as f64 >= 0.65);
            if let Some(last) = gpu.last() {
                prop_assert!(((gpu_flops - last.flops) as f64) / total as f64 * 100.0 < 65.0);
            }
        }
    }
}
