//! Tour of the features beyond the paper's headline experiments:
//! cost-model-derived GPU ratio, real-two-thread hybrid execution,
//! multi-GPU scheduling, the unified-memory comparison, independent
//! result verification, and Chrome-trace timeline export.
//!
//! ```text
//! cargo run --release --example advanced_features
//! ```

use oocgemm::{
    auto_gpu_ratio, multiply_multi_gpu, multiply_unified, verify_product, Hybrid, HybridConfig,
    MultiGpuConfig, OocConfig, OutOfCoreGpu,
};
use sparse::gen::{locality_graph, rmat, RmatConfig};
use sparse::ops::add;
use sparse::stats::ProductStats;

fn main() {
    // A mixed workload: a skewed social graph plus a local web-like
    // component, so chunk densities vary.
    let social = rmat(RmatConfig::mild(13, 90_000), 3);
    let local = locality_graph(8192, 12.0, 10, 0.01, 4);
    let a = add(&social, &local).expect("same shape");
    let stats = ProductStats::square(&a);
    println!(
        "A: {} x {}, nnz = {}; A^2: {} flops, {} nnz, ratio {:.2}\n",
        a.n_rows(),
        a.n_cols(),
        a.nnz(),
        stats.flops,
        stats.nnz_c,
        stats.compression_ratio
    );

    let device = ((stats.nnz_c * 12) as f64 / 3.0) as u64;
    let base = OocConfig::with_device_memory(device);

    // 1. Cost-model-derived GPU ratio instead of the fixed 65%.
    let auto = auto_gpu_ratio(&base.cost, stats.flops, stats.nnz_c, true);
    println!(
        "auto-derived GPU ratio: {:.1}% (paper's fixed setting: 65%)",
        auto * 100.0
    );

    // 2. Hybrid with real two-thread concurrency (Algorithm 4's
    //    "Parallel GPU thread ... Parallel CPU thread").
    let hybrid_cfg = HybridConfig {
        gpu: base.clone(),
        ..HybridConfig::paper_default()
    }
    .ratio(auto);
    let wall = std::time::Instant::now();
    let hybrid = Hybrid::new(hybrid_cfg)
        .multiply_threaded(&a, &a)
        .expect("hybrid run");
    println!(
        "threaded hybrid : {:>8.3} ms simulated ({} GPU / {} CPU chunks), {:.2} s wall",
        hybrid.sim_ms(),
        hybrid.num_gpu_chunks,
        hybrid.num_cpu_chunks,
        wall.elapsed().as_secs_f64()
    );
    println!(
        "scheduler       : {} ({} claims / {} steals, realized GPU share {:.1}%)",
        hybrid.scheduler.kind.name(),
        hybrid.scheduler.gpu_claims,
        hybrid.scheduler.cpu_steals,
        hybrid.scheduler.realized_gpu_ratio * 100.0
    );

    // 3. Multi-GPU scaling (the paper's future-work direction).
    for gpus in [1usize, 2, 4] {
        let cfg = MultiGpuConfig {
            gpu: base.clone(),
            ..MultiGpuConfig::new(gpus)
        };
        let run = multiply_multi_gpu(&a, &a, &cfg).expect("multi-GPU run");
        println!(
            "{gpus} GPU(s) + CPU : {:>8.3} ms simulated (chunks per GPU {:?}, CPU {})",
            run.sim_ns as f64 / 1e6,
            run.gpu_chunks,
            run.cpu_chunks
        );
    }

    // 4. Unified memory — what the paper's introduction argues against.
    let um = multiply_unified(&a, &a, &base.device, &base.cost).expect("unified run");
    println!(
        "unified memory  : {:>8.3} ms simulated ({} page faults{})",
        um.sim_ms(),
        um.faults,
        if um.thrashed { ", thrashing" } else { "" }
    );

    // 5. Independent verification (symbolic structure + Freivalds).
    let gpu = OutOfCoreGpu::new(base).multiply(&a, &a).expect("gpu run");
    let verdict = verify_product(&a, &a, &gpu.c);
    println!("\nverification    : {verdict:?}");
    assert!(verdict.is_ok());

    // 6. Chrome-trace export of the device timeline.
    let trace_path = std::env::temp_dir().join("oocgemm_timeline.json");
    std::fs::write(&trace_path, gpu.timeline.to_chrome_trace()).expect("write trace");
    println!(
        "timeline        : {} events -> {} (open in chrome://tracing)",
        gpu.timeline.records.len(),
        trace_path.display()
    );
}
