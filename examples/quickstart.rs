//! Quickstart: multiply a sparse matrix by itself out-of-core.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Generates a power-law graph whose product does not fit the
//! (simulated, scaled-down) GPU, runs all three executors of the paper
//! — multicore CPU baseline, out-of-core GPU, hybrid — and verifies
//! the results agree.

use oocgemm::report::cpu_baseline_ns;
use oocgemm::{Hybrid, HybridConfig, OocConfig, OutOfCoreGpu};
use sparse::gen::{rmat, RmatConfig};
use sparse::stats::ProductStats;

fn main() {
    // A skewed graph: 16 Ki vertices, ~120 K edges.
    let a = rmat(RmatConfig::skewed(14, 120_000), 42);
    let stats = ProductStats::square(&a);
    println!(
        "A: {} x {}, nnz = {}; A^2: flops = {}, nnz = {}, compression ratio = {:.2}",
        a.n_rows(),
        a.n_cols(),
        a.nnz(),
        stats.flops,
        stats.nnz_c,
        stats.compression_ratio
    );

    // Scale the simulated device so the product is genuinely
    // out-of-core (output ≈ 3.5x device memory, the paper's regime).
    let device_bytes = (stats.nnz_c * 12) / 3;
    let config = OocConfig::with_device_memory(device_bytes);
    println!(
        "simulated device memory: {:.1} MiB",
        device_bytes as f64 / (1 << 20) as f64
    );

    // 1. Out-of-core GPU (asynchronous pipeline, chunk reordering).
    let gpu = OutOfCoreGpu::new(config.clone())
        .multiply(&a, &a)
        .expect("gpu run");
    println!(
        "out-of-core GPU : {:>8.3} ms simulated, {:.3} GFLOPS, {} chunks ({}x{} panels), \
         transfers {:.1}% of makespan",
        gpu.sim_ms(),
        gpu.gflops(),
        gpu.plan.num_chunks(),
        gpu.plan.row_panels(),
        gpu.plan.col_panels(),
        gpu.transfer_fraction() * 100.0
    );

    // 2. Multicore CPU baseline (Nagasaka-style), modeled time.
    let cpu_ns = cpu_baseline_ns(&config.cost, stats.flops, stats.nnz_c);
    println!(
        "multicore CPU   : {:>8.3} ms simulated, {:.3} GFLOPS",
        cpu_ns as f64 / 1e6,
        stats.flops as f64 / cpu_ns as f64
    );

    // 3. Hybrid: densest chunks on the GPU until 65% of flops.
    let hybrid_cfg = HybridConfig {
        gpu: config,
        ..HybridConfig::paper_default()
    };
    let hybrid = Hybrid::new(hybrid_cfg)
        .multiply(&a, &a)
        .expect("hybrid run");
    println!(
        "hybrid CPU+GPU  : {:>8.3} ms simulated, {:.3} GFLOPS ({} GPU / {} CPU chunks)",
        hybrid.sim_ms(),
        hybrid.gflops(),
        hybrid.num_gpu_chunks,
        hybrid.num_cpu_chunks
    );

    // All numeric results are real; check they agree.
    assert!(gpu.c.approx_eq(&hybrid.c, 1e-9), "executors disagree");
    assert_eq!(
        gpu.c.nnz() as u64,
        stats.nnz_c,
        "symbolic pass disagrees with product"
    );
    println!(
        "\nspeedups: GPU {:.2}x over CPU, hybrid {:.2}x over GPU",
        cpu_ns as f64 / gpu.sim_ns as f64,
        gpu.sim_ns as f64 / hybrid.sim_ns as f64
    );
}
