//! Algebraic-multigrid Galerkin triple product, out-of-core.
//!
//! ```text
//! cargo run --release --example amg_galerkin
//! ```
//!
//! The paper's first motivating application (Section I): "SpGEMM is
//! one of the key kernels of preconditioners such as algebraic
//! multigrid". AMG coarsening computes `A_coarse = R · A · P` where
//! `P` aggregates fine points into coarse points and `R = Pᵀ`. Both
//! multiplications run through the out-of-core executor; the example
//! builds a small multigrid hierarchy for a 2-D Poisson problem and
//! checks a Galerkin invariant.

use oocgemm::{OocConfig, OutOfCoreGpu};
use sparse::gen::grid2d_stencil;
use sparse::ops::{frobenius_norm, transpose};
use sparse::{ColId, CsrMatrix};

/// Piecewise-constant aggregation prolongator: each `2x2` block of the
/// `n x n` grid becomes one coarse point.
fn aggregation_prolongator(n: usize) -> CsrMatrix {
    let nc = n.div_ceil(2);
    let mut offsets = Vec::with_capacity(n * n + 1);
    let mut cols = Vec::with_capacity(n * n);
    let mut vals = Vec::with_capacity(n * n);
    offsets.push(0);
    for x in 0..n {
        for y in 0..n {
            let coarse = (x / 2) * nc + y / 2;
            cols.push(coarse as ColId);
            vals.push(1.0);
            offsets.push(cols.len());
        }
    }
    CsrMatrix::from_parts(n * n, nc * nc, offsets, cols, vals).expect("valid prolongator")
}

fn main() {
    // Fine-level operator: 9-point stencil on a 192x192 grid.
    let n = 192;
    let mut a = grid2d_stencil(n, n, 1, 7);
    println!("fine level: {} unknowns, nnz = {}", a.n_rows(), a.nnz());

    // Small simulated device: even these modest products go out-of-core.
    let executor = OutOfCoreGpu::new(OocConfig::with_device_memory(2 << 20));

    let mut level = 0;
    let mut grid_n = n;
    while grid_n >= 24 {
        let p = aggregation_prolongator(grid_n);
        let r = transpose(&p);

        // A_coarse = (R * A) * P — two out-of-core SpGEMMs.
        let ra = executor.multiply(&r, &a).expect("R*A");
        let ac = executor.multiply(&ra.c, &p).expect("(R*A)*P");
        println!(
            "level {level}: {} -> {} unknowns; R*A used {} chunks ({:.3} ms simulated), \
             (R*A)*P used {} chunks ({:.3} ms simulated)",
            a.n_rows(),
            ac.c.n_rows(),
            ra.plan.num_chunks(),
            ra.sim_ms(),
            ac.plan.num_chunks(),
            ac.sim_ms(),
        );

        // Galerkin sanity: for P with constant columns, coarse row sums
        // equal aggregated fine row sums (conservation of the stencil).
        let fine_sum: f64 = a.values().iter().sum();
        let coarse_sum: f64 = ac.c.values().iter().sum();
        let rel = (fine_sum - coarse_sum).abs() / fine_sum.abs();
        assert!(rel < 1e-9, "Galerkin sum mismatch at level {level}: {rel}");

        a = ac.c;
        grid_n = grid_n.div_ceil(2);
        level += 1;
    }
    println!(
        "built {} coarse levels; coarsest operator {} x {} (nnz {}), norm {:.3}",
        level,
        a.n_rows(),
        a.n_cols(),
        a.nnz(),
        frobenius_norm(&a)
    );
}
