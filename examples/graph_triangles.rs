//! Triangle counting via masked SpGEMM, out-of-core.
//!
//! ```text
//! cargo run --release --example graph_triangles
//! ```
//!
//! The paper's second motivating application class is graph analytics
//! (Section I cites the GraphBLAS line of work). Triangle counting is
//! the canonical SpGEMM-backed graph kernel: with the adjacency matrix
//! `A` of an undirected graph, `#triangles = Σ (A² ∘ A) / 6` — the
//! elementwise (Hadamard) mask of the product against the original
//! adjacency. `A²` is exactly the product this library computes
//! out-of-core; the mask is a cheap sorted-merge afterwards.

use oocgemm::{Hybrid, HybridConfig, OocConfig};
use sparse::gen::{rmat, RmatConfig};
use sparse::ops::{add, transpose};
use sparse::CsrMatrix;

/// Sum of `A² ∘ A` via per-row sorted intersection.
fn masked_sum(a_squared: &CsrMatrix, mask: &CsrMatrix) -> f64 {
    let mut total = 0.0;
    for r in 0..mask.n_rows() {
        let (mc, sc) = (mask.row_cols(r), a_squared.row_cols(r));
        let sv = a_squared.row_values(r);
        let (mut i, mut j) = (0usize, 0usize);
        while i < mc.len() && j < sc.len() {
            match mc[i].cmp(&sc[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    total += sv[j];
                    i += 1;
                    j += 1;
                }
            }
        }
    }
    total
}

/// Exact reference count by wedge checking (O(Σ deg²)); fine at this
/// scale, and an independent check on the SpGEMM path.
fn reference_triangles(a: &CsrMatrix) -> u64 {
    let mut count = 0u64;
    for u in 0..a.n_rows() {
        for &v in a.row_cols(u) {
            let v = v as usize;
            if v <= u {
                continue;
            }
            // w adjacent to both u and v, w > v: sorted intersection.
            let (ru, rv) = (a.row_cols(u), a.row_cols(v));
            let (mut i, mut j) = (0usize, 0usize);
            while i < ru.len() && j < rv.len() {
                match ru[i].cmp(&rv[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        if ru[i] as usize > v {
                            count += 1;
                        }
                        i += 1;
                        j += 1;
                    }
                }
            }
        }
    }
    count
}

fn main() {
    // Undirected power-law graph with unit weights.
    let directed = rmat(RmatConfig::skewed(12, 40_000), 11);
    let sym = add(&directed, &transpose(&directed)).expect("same shape");
    // Binarize (remove weights and any accidental diagonal).
    let mut adj = sym.prune(0.0);
    for v in adj.values_mut() {
        *v = 1.0;
    }
    let adj = {
        // Drop the diagonal: triangles are off-diagonal structures.
        let mut coo = sparse::CooMatrix::new(adj.n_rows(), adj.n_cols());
        for (r, c, v) in adj.iter() {
            if r != c as usize {
                coo.push(r, c as usize, v).unwrap();
            }
        }
        coo.to_csr()
    };
    println!("graph: {} vertices, {} edges", adj.n_rows(), adj.nnz() / 2);

    // A² with the hybrid CPU+GPU executor on a tiny simulated device.
    let stats = sparse::stats::ProductStats::square(&adj);
    let device = ((stats.nnz_c * 12) as f64 / 3.5) as u64;
    let cfg = HybridConfig {
        gpu: OocConfig::with_device_memory(device.max(1 << 20)),
        ..HybridConfig::paper_default()
    };
    let run = Hybrid::new(cfg).multiply(&adj, &adj).expect("A^2");
    println!(
        "A^2: {} nnz, {:.3} ms simulated on {} GPU + {} CPU chunks",
        run.c.nnz(),
        run.sim_ms(),
        run.num_gpu_chunks,
        run.num_cpu_chunks
    );

    let triangles = (masked_sum(&run.c, &adj) / 6.0).round() as u64;
    let expect = reference_triangles(&adj);
    println!("triangles via SpGEMM: {triangles}, via wedge reference: {expect}");
    assert_eq!(triangles, expect, "triangle counts must agree");
}
