//! Markov-clustering (MCL) iterations on the out-of-core executor.
//!
//! ```text
//! cargo run --release --example markov_clustering
//! ```
//!
//! MCL is the paper's closing related-work example (Selvitopi et al.'s
//! pipelined Sparse SUMMA targets exactly this workload): alternately
//! *expand* a column-stochastic matrix (`M ← M²`, an SpGEMM) and
//! *inflate* it (elementwise power + renormalize + prune). The
//! expansion step is the dominant cost and is exactly the out-of-core
//! product this library provides. The example clusters a graph with
//! planted communities and checks that MCL recovers them.

use oocgemm::{OocConfig, OutOfCoreGpu};
use sparse::gen::erdos_renyi;
use sparse::ops::{add, transpose};
use sparse::{ColId, CooMatrix, CsrMatrix};

const COMMUNITIES: usize = 8;
const PER_COMMUNITY: usize = 96;

/// A graph with dense planted communities and sparse cross links.
fn planted_graph(seed: u64) -> CsrMatrix {
    let n = COMMUNITIES * PER_COMMUNITY;
    let mut coo = CooMatrix::new(n, n);
    for c in 0..COMMUNITIES {
        let base = c * PER_COMMUNITY;
        let block = erdos_renyi(PER_COMMUNITY, PER_COMMUNITY, 0.25, seed + c as u64);
        for (r, col, _) in block.iter() {
            coo.push(base + r, base + col as usize, 1.0).unwrap();
        }
    }
    let noise = erdos_renyi(n, n, 0.002, seed + 100);
    for (r, col, _) in noise.iter() {
        coo.push(r, col as usize, 1.0).unwrap();
    }
    let m = coo.to_csr();
    let sym = add(&m, &transpose(&m)).expect("same shape");
    // Self-loops keep the random walk aperiodic (standard MCL setup).
    add(&sym, &CsrMatrix::identity(n)).expect("same shape")
}

/// Column-normalizes `m` in place (makes it column-stochastic).
fn normalize_columns(m: &CsrMatrix) -> CsrMatrix {
    let mut col_sums = vec![0.0f64; m.n_cols()];
    for (_, c, v) in m.iter() {
        col_sums[c as usize] += v;
    }
    let mut out = m.clone();
    let cols: Vec<ColId> = m.col_ids().to_vec();
    for (v, c) in out.values_mut().iter_mut().zip(cols) {
        *v /= col_sums[c as usize];
    }
    out
}

/// Inflation: elementwise power `r`, renormalize, prune tiny entries.
fn inflate(m: &CsrMatrix, r: f64, eps: f64) -> CsrMatrix {
    let mut powed = m.clone();
    for v in powed.values_mut() {
        *v = v.powf(r);
    }
    normalize_columns(&powed).prune(eps)
}

/// Cluster label per vertex: the attractor (max-value row) of its column.
fn labels(m: &CsrMatrix) -> Vec<usize> {
    let t = transpose(m); // columns become rows
    (0..t.n_rows())
        .map(|v| {
            t.row_iter(v)
                .max_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaNs"))
                .map(|(attractor, _)| attractor as usize)
                .unwrap_or(v)
        })
        .collect()
}

fn main() {
    let graph = planted_graph(5);
    println!(
        "planted graph: {} vertices in {} communities, nnz = {}",
        graph.n_rows(),
        COMMUNITIES,
        graph.nnz()
    );
    let executor = OutOfCoreGpu::new(OocConfig::with_device_memory(2 << 20));

    let mut m = normalize_columns(&graph);
    for iter in 0..6 {
        let run = executor.multiply(&m, &m).expect("expansion");
        m = inflate(&run.c, 2.0, 1e-6);
        println!(
            "iteration {iter}: expansion {:.3} ms simulated over {} chunks; nnz after \
             inflation = {}",
            run.sim_ms(),
            run.plan.num_chunks(),
            m.nnz()
        );
    }

    // Check the recovered clustering against the planted communities.
    let lab = labels(&m);
    let mut correct = 0usize;
    for c in 0..COMMUNITIES {
        let base = c * PER_COMMUNITY;
        // Majority attractor of this planted community.
        let mut counts = std::collections::HashMap::new();
        for &l in &lab[base..base + PER_COMMUNITY] {
            *counts.entry(l).or_insert(0usize) += 1;
        }
        let (&majority, &size) = counts.iter().max_by_key(|(_, &n)| n).expect("non-empty");
        correct += size;
        println!("community {c}: majority attractor {majority}, {size}/{PER_COMMUNITY} members");
    }
    let accuracy = correct as f64 / (COMMUNITIES * PER_COMMUNITY) as f64;
    println!(
        "clustering accuracy vs planted communities: {:.1}%",
        accuracy * 100.0
    );
    assert!(accuracy > 0.9, "MCL failed to recover planted communities");
}
