//! All-pairs shortest paths by repeated min-plus matrix squaring.
//!
//! ```text
//! cargo run --release --example apsp_minplus
//! ```
//!
//! The paper's introduction cites APSP (Chan [8]) among the graph
//! algorithms built on SpGEMM: over the tropical semiring
//! `(min, +, ∞)`, squaring the weight matrix `⌈log₂ n⌉` times yields
//! all shortest paths. This example runs the semiring executor on a
//! random weighted digraph and cross-checks every distance against
//! Dijkstra.

use cpu_spgemm::multiply_semiring;
use cpu_spgemm::semiring::{min_plus_step, Semiring};
use sparse::{CooMatrix, CsrMatrix};
use std::collections::BinaryHeap;

const N: usize = 400;

fn random_digraph(seed: u64) -> CsrMatrix {
    use rand::{Rng, SeedableRng};
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let mut coo = CooMatrix::new(N, N);
    for u in 0..N {
        // Zero-cost self loop keeps shorter paths when squaring.
        coo.push(u, u, 0.0).unwrap();
        for _ in 0..6 {
            let v = rng.gen_range(0..N);
            if v != u {
                coo.push(u, v, rng.gen_range(1.0..10.0)).unwrap();
            }
        }
    }
    coo.to_csr()
}

/// Reference: Dijkstra from one source over the same matrix.
fn dijkstra(w: &CsrMatrix, src: usize) -> Vec<f64> {
    let mut dist = vec![f64::INFINITY; w.n_rows()];
    dist[src] = 0.0;
    // Max-heap on negated distance.
    let mut heap: BinaryHeap<(std::cmp::Reverse<u64>, usize)> = BinaryHeap::new();
    heap.push((std::cmp::Reverse(0), src));
    while let Some((std::cmp::Reverse(bits), u)) = heap.pop() {
        let d = f64::from_bits(bits);
        if d > dist[u] {
            continue;
        }
        for (v, weight) in w.row_iter(u) {
            let v = v as usize;
            let nd = d + weight;
            if nd < dist[v] {
                dist[v] = nd;
                heap.push((std::cmp::Reverse(nd.to_bits()), v));
            }
        }
    }
    dist
}

fn main() {
    let w = random_digraph(17);
    println!("digraph: {} vertices, {} weighted edges", N, w.nnz() - N);

    // Repeated squaring over (min, +): because every vertex carries a
    // zero-cost self loop, D ⊗ D both extends paths and keeps every
    // existing one, so D_{2k} = D_k ⊗ D_k converges to APSP in
    // ⌈log₂ n⌉ squarings.
    let mut d = w.clone();
    let mut rounds = 0;
    let max_rounds = (N as f64).log2().ceil() as usize + 1;
    loop {
        let next = multiply_semiring(&d, &d, &Semiring::min_plus()).expect("square");
        rounds += 1;
        let done = next.approx_eq(&d, 0.0);
        d = next;
        if done || rounds >= max_rounds {
            break;
        }
    }
    println!(
        "converged after {rounds} min-plus squarings; nnz(D) = {}",
        d.nnz()
    );
    // `min_plus_step` against the original weights is the single-edge
    // relaxation form; at the fixed point it must change nothing.
    let relaxed = min_plus_step(&d, &w).expect("relax");
    assert!(
        relaxed.approx_eq(&d, 0.0),
        "fixed point must be stable under relaxation"
    );

    // Cross-check a handful of sources against Dijkstra.
    let mut checked = 0usize;
    for src in [0usize, 7, 133, 399] {
        let expect = dijkstra(&w, src);
        for (v, &expect_v) in expect.iter().enumerate() {
            let got = if expect_v.is_infinite() {
                // Unreachable: the sparse APSP matrix has no entry.
                let structural = d.row_cols(src).binary_search(&(v as u32)).is_ok();
                if structural {
                    d.get(src, v)
                } else {
                    f64::INFINITY
                }
            } else {
                d.get(src, v)
            };
            if expect_v.is_infinite() {
                assert!(got.is_infinite(), "({src},{v}) should be unreachable");
            } else {
                assert!(
                    (got - expect_v).abs() < 1e-9,
                    "({src},{v}): semiring {got} vs dijkstra {expect_v}"
                );
            }
            checked += 1;
        }
    }
    println!("verified {checked} distances against Dijkstra — all match");
}
